#include "serving/kv_pool.hpp"

#include <algorithm>
#include <cassert>

namespace speedllm::serving {

namespace {

/// FNV-1a offset basis; the chain starts here for every sequence so equal
/// token prefixes hash equally regardless of which sequence wrote them.
/// KvChainSeed folds the dtype in on top, so fp16 and int8 content can
/// never collide in a cache index.
constexpr std::uint64_t kChainSeed = 0xcbf29ce484222325ull;

/// Folds one token into the running chain hash (boost-style combine with
/// an FNV-prime multiply). 64-bit collisions would alias two different
/// prefixes; at simulation scale that is as improbable as in vLLM's
/// hash-addressed prefix cache, and the stress test's no-false-sharing
/// invariant would catch a bad mix.
std::uint64_t MixToken(std::uint64_t h, std::int32_t token) {
  h ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(token)) +
       0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  return h * 0x100000001b3ull;
}

std::uint64_t MixBlock(std::uint64_t h,
                       std::span<const std::int32_t> tokens) {
  for (std::int32_t t : tokens) h = MixToken(h, t);
  return h;
}

}  // namespace

std::uint64_t KvChainAdvance(std::uint64_t h,
                             std::span<const std::int32_t> block_tokens) {
  return MixBlock(h, block_tokens);
}

std::string_view KvCacheDtypeName(KvCacheDtype dtype) {
  switch (dtype) {
    case KvCacheDtype::kFp16: return "fp16";
    case KvCacheDtype::kInt8: return "int8";
  }
  return "unknown";
}

std::uint32_t KvBytesPerToken(const llama::ModelConfig& config,
                              KvCacheDtype dtype) {
  // K and V vectors of kv_dim elements per layer, at the dtype's width.
  const std::int64_t elems = 2ll * config.n_layers * config.kv_dim();
  switch (dtype) {
    case KvCacheDtype::kFp16:
      return static_cast<std::uint32_t>(elems * 2);
    case KvCacheDtype::kInt8:
      return static_cast<std::uint32_t>(elems);
  }
  return 0;
}

std::uint32_t KvQuantMetadataBytesPerBlock(const llama::ModelConfig& config,
                                           KvCacheDtype dtype) {
  if (dtype != KvCacheDtype::kInt8) return 0;
  // One fp32 scale per (layer, K|V) per block: quant::QuantizedTensor's
  // symmetric (zero-point-free) per-group scale bookkeeping with the
  // group spanning one block's tokens. Amortized over the block, so
  // int8 stays close to half of fp16's bytes-per-token.
  return static_cast<std::uint32_t>(2ll * config.n_layers * sizeof(float));
}

std::uint64_t KvChainSeed(KvCacheDtype dtype) {
  // Advance the FNV basis by one dtype-tagged mix step; distinct dtypes
  // start their chains from distinct, fixed seeds.
  return MixToken(kChainSeed,
                  static_cast<std::int32_t>(dtype) + 0x5eed);
}

KvPoolConfig MakeKvPoolConfig(const llama::ModelConfig& model,
                              KvCacheDtype dtype, std::uint64_t pool_bytes,
                              std::uint32_t block_size_tokens,
                              bool enable_prefix_cache) {
  KvPoolConfig config;
  config.pool_bytes = pool_bytes;
  config.block_size_tokens = block_size_tokens;
  config.bytes_per_token = KvBytesPerToken(model, dtype);
  config.dtype = dtype;
  config.quant_metadata_bytes = KvQuantMetadataBytesPerBlock(model, dtype);
  config.enable_prefix_cache = enable_prefix_cache;
  return config;
}

KvBlockPool::KvBlockPool(const KvPoolConfig& config)
    : config_(config), chain_seed_(KvChainSeed(config.dtype)) {
  assert(config_.bytes_per_token > 0 && "bytes_per_token must be set");
  assert(config_.block_size_tokens > 0 && "block_size_tokens must be set");
  const std::uint64_t block_bytes = config_.block_bytes();
  num_blocks_ =
      block_bytes == 0
          ? 0
          : static_cast<std::int64_t>(config_.pool_bytes / block_bytes);
  free_list_.reserve(static_cast<std::size_t>(num_blocks_));
  // Push descending so the LIFO hands out ids 0, 1, 2, ... first.
  for (std::int64_t b = num_blocks_ - 1; b >= 0; --b) {
    free_list_.push_back(static_cast<std::int32_t>(b));
  }
  meta_.resize(static_cast<std::size_t>(num_blocks_));
}

std::int64_t KvBlockPool::BlocksForTokens(std::int64_t tokens) const {
  if (tokens <= 0) return 0;
  const std::int64_t bs = config_.block_size_tokens;
  return (tokens + bs - 1) / bs;
}

std::int64_t KvBlockPool::WalkCachedPrefix(
    std::span<const std::int32_t> tokens, std::int64_t max_tokens,
    std::vector<std::int32_t>* blocks,
    std::vector<std::uint64_t>* chain_before) const {
  if (!config_.enable_prefix_cache || cache_.empty()) return 0;
  const std::int64_t bs = config_.block_size_tokens;
  const std::int64_t len = static_cast<std::int64_t>(tokens.size());
  std::uint64_t h = chain_seed_;
  std::int64_t full = 0;
  // Only whole blocks are content-addressed, and a block starting at or
  // past the cap cannot contribute any usable token.
  while ((full + 1) * bs <= len && full * bs < max_tokens) {
    const std::uint64_t next = MixBlock(
        h, tokens.subspan(static_cast<std::size_t>(full * bs),
                          static_cast<std::size_t>(bs)));
    auto it = cache_.find(next);
    if (it == cache_.end()) break;
    if (blocks != nullptr) blocks->push_back(it->second);
    if (chain_before != nullptr) chain_before->push_back(h);
    h = next;
    ++full;
  }
  return full;
}

PrefixMatch KvBlockPool::MatchCachedPrefix(
    std::span<const std::int32_t> tokens, std::int64_t max_tokens) const {
  PrefixMatch match;
  std::vector<std::int32_t> blocks;
  const std::int64_t full = WalkCachedPrefix(tokens, max_tokens, &blocks,
                                             nullptr);
  if (full == 0 || max_tokens <= 0) return match;
  const std::int64_t bs = config_.block_size_tokens;
  match.matched_tokens = std::min(full * bs, max_tokens);
  match.matched_blocks = (match.matched_tokens + bs - 1) / bs;
  for (std::int64_t k = 0; k < match.matched_blocks; ++k) {
    if (meta_[static_cast<std::size_t>(blocks[static_cast<std::size_t>(k)])]
            .refcount > 0) {
      ++match.live_shared_blocks;
    }
  }
  return match;
}

std::int64_t KvBlockPool::InstallCachedPrefix(
    std::span<const std::int32_t> tokens, std::int64_t max_tokens) {
  if (!config_.enable_prefix_cache) return 0;
  const std::int64_t bs = config_.block_size_tokens;
  const std::int64_t limit =
      std::min(static_cast<std::int64_t>(tokens.size()), max_tokens);
  std::uint64_t h = chain_seed_;
  std::int64_t full = 0;
  while ((full + 1) * bs <= limit) {
    const auto block_tokens = tokens.subspan(
        static_cast<std::size_t>(full * bs), static_cast<std::size_t>(bs));
    const std::uint64_t next = MixBlock(h, block_tokens);
    if (cache_.find(next) == cache_.end()) {
      const std::int32_t block = AllocateBlock();
      if (block < 0) break;  // pool saturated with live owners
      BlockMeta& m = meta_[static_cast<std::size_t>(block)];
      m.refcount = 0;
      m.cached = true;
      m.hash = next;
      m.lru_stamp = lru_tick_++;
      lru_.emplace(m.lru_stamp, block);
      cache_.emplace(next, block);
      ++stats_.cache_insertions;
      ++stats_.remote_install_blocks;
      if (listener_ != nullptr) {
        listener_->OnCacheInsert(next, h, block_tokens);
      }
    }
    h = next;
    ++full;
  }
  return full * bs;
}

Status KvBlockPool::Register(std::uint64_t seq) {
  if (seqs_.count(seq)) {
    return FailedPrecondition("sequence " + std::to_string(seq) +
                              " already registered in KV pool");
  }
  SeqState state;
  state.chain_hash = chain_seed_;
  seqs_.emplace(seq, std::move(state));
  ++stats_.sequence_registers;
  return Status::Ok();
}

StatusOr<PrefixMatch> KvBlockPool::AcquireCachedPrefix(
    std::uint64_t seq, std::span<const std::int32_t> tokens,
    std::int64_t max_tokens) {
  auto it = seqs_.find(seq);
  if (it == seqs_.end()) {
    return NotFound("sequence " + std::to_string(seq) +
                    " not registered in KV pool");
  }
  SeqState& state = it->second;
  if (state.tokens != 0 || !state.blocks.empty()) {
    return FailedPrecondition("AcquireCachedPrefix must run before Append");
  }
  PrefixMatch match;
  if (!config_.enable_prefix_cache) return match;
  ++stats_.prefix_queries;
  stats_.prefix_lookup_tokens +=
      std::max<std::int64_t>(0,
                             std::min(static_cast<std::int64_t>(tokens.size()),
                                      max_tokens));
  std::vector<std::int32_t> blocks;
  std::vector<std::uint64_t> chain_before;
  const std::int64_t full =
      WalkCachedPrefix(tokens, max_tokens, &blocks, &chain_before);
  if (full == 0 || max_tokens <= 0) return match;

  const std::int64_t bs = config_.block_size_tokens;
  match.matched_tokens = std::min(full * bs, max_tokens);
  match.matched_blocks = (match.matched_tokens + bs - 1) / bs;
  for (std::int64_t k = 0; k < match.matched_blocks; ++k) {
    const std::int32_t b = blocks[static_cast<std::size_t>(k)];
    BlockMeta& m = meta_[static_cast<std::size_t>(b)];
    if (m.refcount == 0) {
      // Revive off the LRU list: the block was free capacity until now.
      lru_.erase(m.lru_stamp);
      ++used_blocks_;
      ++stats_.cache_block_reacquires;
      stats_.peak_used_blocks = std::max(stats_.peak_used_blocks,
                                         used_blocks_);
    } else {
      ++match.live_shared_blocks;
      ++stats_.shared_block_acquires;
    }
    ++m.refcount;
    state.blocks.push_back(b);
  }
  state.tokens = match.matched_tokens;
  // The chain covers only fully consumed blocks; a partially consumed
  // last block contributes its consumed tokens to the tail so a later
  // seal recomputes the same content hash.
  const std::int64_t sealed = match.matched_tokens / bs;
  state.chain_hash = sealed < full
                         ? chain_before[static_cast<std::size_t>(sealed)]
                         : MixBlock(chain_before.back(),
                                    tokens.subspan(static_cast<std::size_t>(
                                                       (full - 1) * bs),
                                                   static_cast<std::size_t>(bs)));
  const std::int64_t rem = match.matched_tokens % bs;
  if (rem > 0) {
    state.tail.assign(tokens.begin() + sealed * bs,
                      tokens.begin() + match.matched_tokens);
  }
  ++stats_.prefix_hits;
  stats_.prefix_hit_tokens += match.matched_tokens;
  // Rebuilding the slot executor's KV from the cached blocks is an
  // on-device HBM read of every mapped block.
  const std::int64_t restore_bytes =
      match.matched_blocks * static_cast<std::int64_t>(config_.block_bytes());
  stats_.restore_dma_bytes += restore_bytes;
  stats_.dma_bytes_moved += restore_bytes;
  assert(bytes_in_use() <= config_.pool_bytes &&
         "KV pool exceeded its HBM budget");
  return match;
}

std::int32_t KvBlockPool::AllocateBlock() {
  if (!free_list_.empty()) {
    const std::int32_t b = free_list_.back();
    free_list_.pop_back();
    return b;
  }
  if (!lru_.empty()) {
    // Evict the coldest cached block: its content is discarded and the
    // hash entry removed, but no live owner is ever touched.
    const auto oldest = lru_.begin();
    const std::int32_t b = oldest->second;
    lru_.erase(oldest);
    BlockMeta& m = meta_[static_cast<std::size_t>(b)];
    assert(m.refcount == 0 && m.cached && "LRU held a live block");
    cache_.erase(m.hash);
    if (listener_ != nullptr) listener_->OnCacheEvict(m.hash);
    m.cached = false;
    m.hash = 0;
    ++stats_.cache_evictions;
    return b;
  }
  return -1;
}

void KvBlockPool::AdoptBlock(SeqState& state, std::int32_t block,
                             bool replace_tail) {
  BlockMeta& m = meta_[static_cast<std::size_t>(block)];
  m.refcount = 1;
  m.cached = false;
  m.hash = 0;
  if (replace_tail) {
    state.blocks.back() = block;
  } else {
    state.blocks.push_back(block);
  }
  ++used_blocks_;
  ++stats_.block_allocs;
  stats_.peak_used_blocks = std::max(stats_.peak_used_blocks, used_blocks_);
  assert(bytes_in_use() <= config_.pool_bytes &&
         "KV pool exceeded its HBM budget");
}

void KvBlockPool::DropBlockRef(std::int32_t block) {
  BlockMeta& m = meta_[static_cast<std::size_t>(block)];
  assert(m.refcount > 0 && "dropping a reference nobody holds");
  if (--m.refcount > 0) return;
  --used_blocks_;
  ++stats_.block_frees;
  if (m.cached) {
    m.lru_stamp = lru_tick_++;
    lru_.emplace(m.lru_stamp, block);
  } else {
    free_list_.push_back(block);
  }
}

void KvBlockPool::SealTailBlock(SeqState& state) {
  const std::uint64_t parent = state.chain_hash;
  state.chain_hash = MixBlock(state.chain_hash, state.tail);
  if (!config_.enable_prefix_cache) {
    state.tail.clear();
    return;
  }
  const std::int32_t block = state.blocks.back();
  BlockMeta& m = meta_[static_cast<std::size_t>(block)];
  assert(!m.cached && m.refcount == 1 && "sealing a non-private tail");
  const auto [it, inserted] = cache_.try_emplace(state.chain_hash, block);
  (void)it;
  if (inserted) {
    // First block with this content: future prompts match it.
    m.cached = true;
    m.hash = state.chain_hash;
    ++stats_.cache_insertions;
    if (listener_ != nullptr) {
      listener_->OnCacheInsert(state.chain_hash, parent, state.tail);
    }
  }
  // Equal content already cached (e.g. the source of a copy-on-write):
  // this physical copy stays private and is simply freed on release.
  state.tail.clear();
}

Status KvBlockPool::Append(std::uint64_t seq, std::int32_t token) {
  auto it = seqs_.find(seq);
  if (it == seqs_.end()) {
    return NotFound("sequence " + std::to_string(seq) +
                    " not registered in KV pool");
  }
  SeqState& state = it->second;
  const std::int64_t bs = config_.block_size_tokens;
  const std::int64_t offset = state.tokens % bs;
  if (offset == 0) {
    const std::int32_t block = AllocateBlock();
    if (block < 0) {
      return ResourceExhausted("KV pool out of blocks (" +
                               std::to_string(num_blocks_) + " total)");
    }
    AdoptBlock(state, block, /*replace_tail=*/false);
  } else {
    const std::int32_t tail = state.blocks.back();
    const BlockMeta& m = meta_[static_cast<std::size_t>(tail)];
    if (m.cached || m.refcount > 1) {
      // Copy-on-write: the KV write would land inside a block that other
      // owners (or the cache index) rely on staying immutable. Allocate
      // first so failure leaves the sequence untouched.
      const std::int32_t copy = AllocateBlock();
      if (copy < 0) {
        return ResourceExhausted("KV pool out of blocks for COW (" +
                                 std::to_string(num_blocks_) + " total)");
      }
      DropBlockRef(tail);
      AdoptBlock(state, copy, /*replace_tail=*/true);
      ++stats_.cow_copies;
      // The private copy rewrites one block's payload through HBM.
      const std::int64_t cow_bytes =
          static_cast<std::int64_t>(config_.block_bytes());
      stats_.cow_dma_bytes += cow_bytes;
      stats_.dma_bytes_moved += cow_bytes;
    }
  }
  state.tail.push_back(token);
  ++state.tokens;
  if (state.speculating) ++stats_.spec_draft_tokens;
  if (state.tokens % bs == 0) {
    if (state.speculating) {
      // Draft content must never enter the content-address index: the
      // tokens are a draft model's guesses, not committed stream
      // content. Advance the chain shape (rollback restores it) but
      // skip the cache insert and its listener.
      state.chain_hash = MixBlock(state.chain_hash, state.tail);
      state.tail.clear();
    } else {
      SealTailBlock(state);
    }
  }
  return Status::Ok();
}

Status KvBlockPool::BeginSpeculation(std::uint64_t seq) {
  auto it = seqs_.find(seq);
  if (it == seqs_.end()) {
    return NotFound("sequence " + std::to_string(seq) +
                    " not registered in KV pool");
  }
  SeqState& state = it->second;
  if (state.speculating) {
    return FailedPrecondition("sequence " + std::to_string(seq) +
                              " already has an open draft phase");
  }
  state.speculating = true;
  state.spec_tokens = state.tokens;
  state.spec_num_blocks = state.blocks.size();
  state.spec_chain_hash = state.chain_hash;
  state.spec_tail = state.tail;
  ++stats_.spec_phases;
  return Status::Ok();
}

Status KvBlockPool::RollbackSpeculation(std::uint64_t seq) {
  auto it = seqs_.find(seq);
  if (it == seqs_.end()) {
    return NotFound("sequence " + std::to_string(seq) +
                    " not registered in KV pool");
  }
  SeqState& state = it->second;
  if (!state.speculating) {
    return FailedPrecondition("sequence " + std::to_string(seq) +
                              " has no open draft phase");
  }
  // Draft-only blocks past the snapshot were allocated with sealing
  // suppressed, so nobody else could ever have acquired them: refcount
  // is exactly one and they are not cached, which makes DropBlockRef
  // return them straight to the free list.
  while (state.blocks.size() > state.spec_num_blocks) {
    const std::int32_t block = state.blocks.back();
    assert(meta_[static_cast<std::size_t>(block)].refcount == 1 &&
           !meta_[static_cast<std::size_t>(block)].cached &&
           "draft-only block leaked a reference or a cache entry");
    DropBlockRef(block);
    state.blocks.pop_back();
    ++stats_.spec_rollback_blocks;
  }
  // If a copy-on-write replaced the snapshot's tail block mid-phase, the
  // private copy stays: it holds the committed prefix content, exactly
  // the after-COW state a non-speculative write would have left.
  state.tokens = state.spec_tokens;
  state.chain_hash = state.spec_chain_hash;
  state.tail = std::move(state.spec_tail);
  state.spec_tail.clear();
  state.speculating = false;
  return Status::Ok();
}

bool KvBlockPool::InSpeculation(std::uint64_t seq) const {
  auto it = seqs_.find(seq);
  return it != seqs_.end() && it->second.speculating;
}

Status KvBlockPool::Release(std::uint64_t seq, bool preempted) {
  auto it = seqs_.find(seq);
  if (it == seqs_.end()) {
    return NotFound("sequence " + std::to_string(seq) +
                    " not registered in KV pool");
  }
  if (preempted) {
    // A swap-out drains the victim's privately-owned, non-cached KV back
    // through the HBM staging buffers (the write-out a swap preemption
    // pays). Blocks with a co-owner stay resident for the co-owner, and
    // cache-indexed blocks park on the LRU list *in place* -- neither
    // moves a byte. Readmission recomputes instead of restoring, so no
    // swap-in is charged; if the cached blocks survive until then, the
    // readmission's AcquireCachedPrefix charges a restore instead.
    std::int64_t swap_bytes = 0;
    for (std::int32_t b : it->second.blocks) {
      const BlockMeta& m = meta_[static_cast<std::size_t>(b)];
      if (m.refcount == 1 && !m.cached) {
        swap_bytes += static_cast<std::int64_t>(config_.block_bytes());
      }
    }
    stats_.swap_dma_bytes += swap_bytes;
    stats_.dma_bytes_moved += swap_bytes;
  }
  for (std::int32_t b : it->second.blocks) {
    DropBlockRef(b);
  }
  seqs_.erase(it);
  ++stats_.sequence_releases;
  if (preempted) ++stats_.preemption_releases;
  return Status::Ok();
}

std::int64_t KvBlockPool::SequenceTokens(std::uint64_t seq) const {
  auto it = seqs_.find(seq);
  return it == seqs_.end() ? 0 : it->second.tokens;
}

const std::vector<std::int32_t>& KvBlockPool::BlockTable(
    std::uint64_t seq) const {
  auto it = seqs_.find(seq);
  assert(it != seqs_.end() && "BlockTable of unregistered sequence");
  return it->second.blocks;
}

std::int32_t KvBlockPool::BlockRefCount(std::int32_t block) const {
  return meta_[static_cast<std::size_t>(block)].refcount;
}

bool KvBlockPool::BlockIsCached(std::int32_t block) const {
  return meta_[static_cast<std::size_t>(block)].cached;
}

std::uint64_t KvBlockPool::fragmentation_bytes() const {
  // Only a private partial tail wastes slots: shared and cached blocks
  // are always full, and a shared partial tail (a mapped block awaiting
  // copy-on-write) holds live co-owned content, not slack.
  const std::int64_t bs = config_.block_size_tokens;
  std::uint64_t wasted_tokens = 0;
  for (const auto& [seq, state] : seqs_) {
    (void)seq;
    const std::int64_t rem = state.tokens % bs;
    if (rem == 0 || state.blocks.empty()) continue;
    const BlockMeta& m =
        meta_[static_cast<std::size_t>(state.blocks.back())];
    if (!m.cached && m.refcount == 1) {
      wasted_tokens += static_cast<std::uint64_t>(bs - rem);
    }
  }
  return wasted_tokens * config_.bytes_per_token;
}

}  // namespace speedllm::serving
