// SpeedLLM -- multi-card cluster router over N serving shards.
//
// Scales the PR-1 single-card serving stack across N U280 cards, the way
// a vLLM-style deployment shards traffic across replicas: each card is a
// ShardScheduler (its own paged KvBlockPool carved from its own
// hw::HbmConfig plus the continuous-batching tick loop), and a
// ClusterRouter places every arriving request on one card via a pluggable
// placement policy. All shards chain their ticks on ONE shared
// sim::Engine, so per-card steps interleave on a single simulated clock
// and cluster-wide metrics (aggregate tokens/s, per-card utilization and
// imbalance, TTFT/TPOT percentiles) fall out of one coherent timeline.
//
// Placement policies:
//  * round-robin            -- arrival order modulo card count;
//  * least-outstanding      -- card owing the fewest prefill+decode tokens;
//  * best-fit-free-KV       -- card with the most projected-free KV blocks
//                              (free blocks minus queued-but-unadmitted
//                              demand), i.e. the most capacity headroom.
//
// When a shard's pool runs dry (admission or decode blocked on KV
// capacity) the router rebalances: queued requests that have not started
// prefill migrate to the card with the most projected-free blocks,
// newest-first, each at most once per other card so rebalancing always
// terminates. Token streams are seeded per request (global index), so
// generated tokens are byte-identical for any card count, placement
// policy, or preemption schedule.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "accel/program.hpp"
#include "common/status.hpp"
#include "hw/cluster.hpp"
#include "llama/sampler.hpp"
#include "llama/weights.hpp"
#include "obs/telemetry.hpp"
#include "serving/interconnect.hpp"
#include "serving/request.hpp"
#include "serving/scheduler.hpp"
#include "sim/engine.hpp"

namespace speedllm::serving {

class ShardScheduler;

/// How the router picks a card for each arriving request.
enum class PlacementPolicy {
  kRoundRobin,              ///< arrival order, ignores card state
  kLeastOutstandingTokens,  ///< min remaining prefill+decode tokens
  kBestFitFreeKv,           ///< max projected-free KV blocks
  /// Card whose KV pool holds the longest cached prefix of the prompt
  /// (multi-turn chats return to their history's card; shared system
  /// prompts pile onto one card's cache). Ties -- including "nobody has
  /// anything" -- fall back to the most projected-free blocks.
  kPrefixAffinity,
};

/// Human-readable policy name ("round_robin", ...) for tables and logs.
std::string_view PlacementPolicyName(PlacementPolicy policy);

/// Whether admission may fetch a prompt's cached prefix from a remote
/// card's pool over the interconnect instead of recomputing it locally.
/// Token streams are byte-identical under every policy -- fetching only
/// moves timing (transfer time instead of prefill compute).
enum class PrefixFetchPolicy {
  /// Fetch when the estimated transfer time (bytes over the link model,
  /// given current station occupancy) is at most the estimated local
  /// recompute time; otherwise recompute.
  kAuto,
  /// Fetch whenever any remote card holds a longer cached prefix than
  /// the placed card (arbitration seam: forces the fetch branch).
  kAlwaysFetch,
  /// Ignore the remote index at admission (forces the recompute branch).
  kNeverFetch,
};

/// Human-readable fetch-policy name ("auto" / "always" / "never").
std::string_view PrefixFetchPolicyName(PrefixFetchPolicy policy);

/// Cluster-level knobs: placement policy, per-card scheduler config,
/// optional per-card KV pool sizes, rebalancing, and telemetry.
struct ClusterConfig {
  /// Placement policy routing each arrival to a card.
  PlacementPolicy placement = PlacementPolicy::kRoundRobin;
  /// Per-card scheduler knobs (batch policy, budgets, block size, ...).
  SchedulerConfig shard;
  /// Optional per-card KV pool override in bytes; entry 0 (or an empty
  /// vector) falls back to `shard.kv_pool_bytes` / HBM derivation. Lets
  /// tests and heterogeneous deployments size each card's pool apart.
  std::vector<std::uint64_t> kv_pool_bytes_per_card;
  /// Migrate queued (never-prefilled) requests away from a dry shard.
  bool rebalance_queued = true;
  /// Serving-layer telemetry switches (lifecycle tracing + tick-sampled
  /// metrics). Off by default; SchedulerConfig::record_ticks implies
  /// tracing so the tick_log compat view keeps working.
  obs::TelemetryConfig telemetry;
  /// Per-card shard roles for disaggregated prefill/decode serving.
  /// Empty means every card is ShardRole::kUnified; otherwise one entry
  /// per card (ValidateClusterRoles). Prefill shards ship finished KV to
  /// a decode shard over the interconnect as a costed transfer.
  std::vector<ShardRole> shard_roles;
  /// Remote-prefix arbitration at admission (see PrefixFetchPolicy).
  PrefixFetchPolicy prefix_fetch = PrefixFetchPolicy::kAuto;
  /// Tick independent shards concurrently: the offline ClusterRouter
  /// drives the shared engine with sim::Engine::RunParallel on the
  /// global thread pool, one lane per card, with a deterministic
  /// barrier at every cross-shard interaction (placement, rebalance,
  /// handoffs, user emission hooks). Reports, token streams, and
  /// telemetry exports are byte-identical to the serial run. Inert for
  /// online sessions driven via engine().Run()/RunUntil().
  bool parallel_ticking = false;
};

/// Validates the cluster-level disaggregation knobs against a card
/// count: `shard_roles` must be empty or one entry per card, at least
/// one card must be prefill-capable (kUnified or kPrefill), and prefill
/// and decode specialists must come in (at least) pairs -- a kPrefill
/// card needs somewhere to ship KV, and a kDecode card needs someone to
/// feed it.
Status ValidateClusterRoles(const ClusterConfig& config, int num_cards);

/// Merged + per-card results of one cluster timeline.
struct ClusterReport {
  /// Cluster-wide view: outcomes in original request order, aggregate
  /// tokens/s over the shared-clock makespan, summed tick/preemption/KV
  /// counters. Latency percentiles (ttft/tpot/latency) come from here.
  ServingReport merged;
  /// Per-card reports (outcomes of the requests that card served).
  std::vector<ServingReport> shard_reports;
  /// Card that served each request (after any rebalancing).
  std::vector<std::int32_t> shard_of_request;
  /// Per-card busy-time fraction of the cluster makespan.
  std::vector<double> card_utilization;
  /// Queued requests migrated between cards by the rebalancer.
  std::int64_t rebalanced_requests = 0;

  /// One admission-time remote-prefix arbitration, logged for BOTH
  /// branches so tests can assert the chosen branch against the
  /// estimates that drove it.
  struct PrefixFetchDecision {
    std::size_t stream_index = 0;      ///< request being admitted
    std::int32_t src_card = -1;        ///< remote holder considered
    std::int32_t dst_card = -1;        ///< card the request was placed on
    std::int64_t tokens = 0;           ///< extra prefix tokens on offer
    std::int64_t bytes = 0;            ///< KV bytes the fetch would move
    double fetch_seconds_estimate = 0.0;      ///< modeled transfer time
    double recompute_seconds_estimate = 0.0;  ///< modeled local prefill
    bool fetched = false;              ///< branch actually taken
  };

  /// Total bytes moved card-to-card over the interconnect (handoffs +
  /// prefix fetches).
  std::int64_t kv_transfer_bytes = 0;
  /// Count of card-to-card interconnect transfers.
  std::int64_t kv_transfers = 0;
  /// Prefill->decode KV handoffs (disaggregated mode only).
  std::int64_t kv_handoffs = 0;
  /// Remote prefix fetches actually performed at admission.
  std::int64_t remote_prefix_hits = 0;
  /// Prompt tokens satisfied by remote fetches instead of recompute.
  std::int64_t remote_prefix_hit_tokens = 0;
  /// Per-card bytes sent over outgoing interconnect links.
  std::vector<std::int64_t> card_transfer_out_bytes;
  /// Per-card bytes received over incoming interconnect links.
  std::vector<std::int64_t> card_transfer_in_bytes;
  /// Per-card local DMA bytes queued through the shared HBM channel
  /// (COW/restore/swap traffic, now contending with transfers).
  std::vector<std::int64_t> card_local_dma_bytes;
  /// Every remote-prefix arbitration, in admission order (both branches).
  std::vector<PrefixFetchDecision> prefix_fetch_log;

  /// Max-over-mean of per-card token counts: 1.0 is perfectly balanced,
  /// N means one card did everything.
  double imbalance() const;
  /// Average per-card busy-time fraction.
  double mean_utilization() const;
};

/// One live cluster timeline: the shared sim::Engine, the per-card
/// shards, and the routing/rebalancing state. Unlike ClusterRouter::Run
/// (which drains a complete pre-timestamped trace), a session is *online*:
/// requests may be submitted at any simulated time, cancelled mid-flight,
/// and streamed out through emission hooks -- the substrate the
/// api::Engine facade drives incrementally. The offline router is one
/// session fed every arrival up front.
class ClusterSession {
 public:
  /// `program` and `weights` must outlive the session; `cards` must
  /// already be validated and `config.shard` normalized. Copies `cards`,
  /// `config`, and `sampler_config`.
  ClusterSession(const accel::Program& program, const llama::Weights& weights,
                 const hw::MultiCardConfig& cards, const ClusterConfig& config,
                 const llama::SamplerConfig& sampler_config);
  /// Destroys the session; unharvested outcomes are discarded.
  ~ClusterSession();

  /// Non-copyable: the session owns a live simulation timeline.
  ClusterSession(const ClusterSession&) = delete;
  /// Non-assignable: the session owns a live simulation timeline.
  ClusterSession& operator=(const ClusterSession&) = delete;

  /// The shared clock every shard chains its ticks on. The caller drives
  /// Run()/RunUntil(); shards and arrivals inject events.
  sim::Engine& engine() { return engine_; }
  /// Current simulated time of the shared clock, seconds.
  double now_seconds() const;
  /// Converts simulated seconds to engine cycles at the kernel clock.
  sim::Cycles SecondsToCycles(double seconds) const;

  /// Number of cards (shards) in this session.
  int num_cards() const { return static_cast<int>(shards_.size()); }
  /// Card `card`'s shard (placement-policy queries, tests).
  const ShardScheduler& shard(int card) const { return *shards_[card]; }

  /// Session telemetry (trace + metrics), or null when disabled and
  /// record_ticks is off. Owned by the session; alive until destruction.
  const obs::Telemetry* telemetry() const { return telemetry_.get(); }

  /// Model-limit + worst-case-pool admission check (a request must fit
  /// the smallest card: placement and rebalancing may use any card).
  Status Validate(const ServingRequest& request, const std::string& tag) const;

  /// Schedules placement of `*request` at `at` (engine cycles, >= now).
  /// `request` must stay alive and unmodified until harvest;
  /// `stream_index` values must be dense submission indices (0, 1, ...).
  void SubmitAt(const ServingRequest* request, std::size_t stream_index,
                sim::Cycles at);

  /// Cancels a stream wherever it lives: an unplaced arrival is
  /// suppressed, a live sequence is aborted on its owning shard (KV
  /// blocks freed immediately). The finish hook fires with
  /// FinishReason::kCancelled before this returns.
  Status Cancel(std::size_t stream_index);

  /// Streams tokens/finishes from every shard (stream_index keyed). The
  /// shard-side wrappers are installed at construction, so these may be
  /// (re)assigned at any time; shed rejections also fire `on_finish`
  /// (with FinishReason::kShed), from inside the arrival event.
  void set_emission_hooks(TokenEmissionHook on_token,
                          FinishEmissionHook on_finish);

  /// OK when every submitted stream finished (done, stopped, or
  /// cancelled). Call after the engine drains.
  Status Finalize() const;
  /// Merged + per-card reports over one coherent timeline. Call once.
  ClusterReport Harvest();

  /// The shared card-to-card interconnect (station occupancy, per-link
  /// byte counters). Alive for the session's lifetime.
  const Interconnect& interconnect() const { return *interconnect_; }
  /// Cluster-wide prefix index over every card's content-addressed KV
  /// pool. Alive for the session's lifetime.
  const PrefixDirectory& prefix_directory() const { return *directory_; }
  /// Snapshot of every card's live cached-prefix chains, suitable for
  /// ImportPrefixDirectory into a fresh session (index persistence
  /// across api::Engine restarts).
  PrefixDirectorySnapshot ExportPrefixDirectory() const;
  /// Re-seeds per-card KV caches from a snapshot taken by
  /// ExportPrefixDirectory. Cost-free (simulated t=0 warmup, no DMA):
  /// the blocks are assumed already resident from the previous life.
  /// Call before submitting any requests.
  void ImportPrefixDirectory(const PrefixDirectorySnapshot& snapshot);

 private:
  struct StreamRecord {
    const ServingRequest* request = nullptr;
    std::int32_t shard = -1;       // owning card after any rebalancing
    std::int32_t migrations = 0;   // rebalancer moves consumed
    bool placed = false;
    bool finished = false;   // includes cancelled
    bool cancelled = false;
  };

  void Place(std::size_t stream_index);
  std::size_t PickCard(const ServingRequest& request);
  void Rebalance(std::size_t donor);
  /// Deterministic token-bucket admission check, evaluated at the
  /// arrival event before placement. Returns true when the request must
  /// be shed. Depends only on the arrival trace and AdmissionConfig --
  /// never on card count, placement, or scheduling -- so the shed set is
  /// identical across cluster sizes.
  bool ShouldShed(const ServingRequest& request, double now_s);
  /// Synthesizes the kShed outcome, records the terminal event, bumps
  /// the per-tier shed metrics, and fires the finish hook.
  void Shed(std::size_t stream_index, double now_s);
  /// Updates the per-tier SLO/goodput metric counters for one finished
  /// request (no-op when metrics are off or the finish is not terminal
  /// success).
  void ObserveSloMetrics(const RequestOutcome& outcome, FinishReason reason);
  /// Receives a finished-prefill KV handoff from prefill shard `src`,
  /// picks the decode card with the most projected-free KV blocks,
  /// charges the transfer on the interconnect, and schedules adoption at
  /// the transfer's end.
  void HandleHandoff(KvHandoff handoff, sim::Cycles ready, std::int32_t src);
  /// Admission-time remote-prefix arbitration for `stream_index` placed
  /// on `dst`. Returns true when a fetch was chosen: the transfer is
  /// charged and Submit is deferred to the transfer's end (the caller
  /// must not Submit). Logs the decision either way.
  bool MaybeFetchPrefix(std::size_t stream_index, std::size_t dst);
  /// Records the send/recv kKvTransfer event pair and per-link metrics
  /// for one interconnect transfer window.
  void RecordTransfer(std::size_t stream_index, std::int32_t src,
                      std::int32_t dst, std::int64_t bytes, sim::Cycles start,
                      sim::Cycles end);

  const accel::Program& program_;
  const llama::Weights& weights_;
  hw::MultiCardConfig cards_;
  ClusterConfig config_;
  llama::SamplerConfig sampler_config_;
  double clock_mhz_ = 0.0;
  std::int64_t min_pool_blocks_ = 0;

  sim::Engine engine_;
  std::unique_ptr<obs::Telemetry> telemetry_;
  std::vector<std::unique_ptr<ShardScheduler>> shards_;
  // Shared card-to-card link + HBM-channel model; every shard's local
  // DMA and every KV transfer queue on the same stations.
  std::unique_ptr<Interconnect> interconnect_;
  // Cluster-wide prefix index fed by per-pool cache listeners.
  std::unique_ptr<PrefixDirectory> directory_;
  // Cards that may receive placed arrivals (everything but kDecode).
  std::vector<std::size_t> placeable_;
  // Handoffs in transit on the interconnect, keyed by stream index;
  // Cancel intercepts them here before adoption.
  std::map<std::size_t, KvHandoff> handoff_in_flight_;
  // Decode tokens still owed by in-flight handoffs, per destination card:
  // several handoffs dispatched at the same tick close must not all pick
  // the same "least loaded" card, so the destination choice counts work
  // that has been routed but not yet adopted.
  std::vector<std::int64_t> handoff_pending_tokens_;
  std::vector<ClusterReport::PrefixFetchDecision> fetch_log_;
  std::int64_t handoff_transfers_ = 0;
  std::int64_t remote_hits_ = 0;
  std::int64_t remote_hit_tokens_ = 0;
  std::vector<StreamRecord> records_;
  /// Outcomes of requests cancelled before their placement event ran
  /// (no shard ever saw them).
  std::map<std::size_t, RequestOutcome> unplaced_outcomes_;
  TokenEmissionHook on_token_;
  FinishEmissionHook on_finish_;
  std::size_t rr_counter_ = 0;
  std::int64_t rebalanced_ = 0;
  // Admission-control token bucket (see AdmissionConfig): refilled by
  // simulated-time deltas at each arrival, drained by admitted requests.
  double bucket_tokens_ = 0.0;
  double bucket_refill_seconds_ = 0.0;
  // Per-tier SLO metric series (registered when metrics are on), by
  // TierIndex: goodput tokens, attained/missed finishes, sheds.
  std::array<obs::MetricsRegistry::MetricId, kNumTiers> goodput_ids_{};
  std::array<obs::MetricsRegistry::MetricId, kNumTiers> slo_attained_ids_{};
  std::array<obs::MetricsRegistry::MetricId, kNumTiers> slo_missed_ids_{};
  std::array<obs::MetricsRegistry::MetricId, kNumTiers> shed_ids_{};
  bool slo_metrics_ = false;
  // Per-directed-link transfer byte counters (src*n+dst) plus the
  // remote-hit counter; registered only when metrics are on and n > 1.
  std::vector<obs::MetricsRegistry::MetricId> link_metric_ids_;
  obs::MetricsRegistry::MetricId remote_hit_metric_id_ = 0;
  bool transfer_metrics_ = false;
  // RunParallel telemetry staging: one obs::TelemetryStage per in-flight
  // lane event, keyed by the engine's event token. begin_event creates
  // and binds it on the worker; commit_event replays it at the barrier
  // in exact serial order. The map is touched from worker threads, hence
  // the mutex (replay itself runs on the driving thread only).
  std::mutex stage_mu_;
  std::unordered_map<std::uint64_t, std::unique_ptr<obs::TelemetryStage>>
      stages_;
};

/// Offline multi-card runner: one ClusterSession fed a complete
/// pre-timestamped request trace up front and drained to completion.
class ClusterRouter {
 public:
  /// `program` and `weights` must outlive the router. All cards run the
  /// same compiled program; cards may differ in HBM capacity but must
  /// share one kernel clock (hw::MultiCardConfig::Validate).
  ClusterRouter(const accel::Program& program, const llama::Weights& weights,
                hw::MultiCardConfig cards, ClusterConfig config = {});

  /// Serves `requests` to completion across the cluster. Deterministic:
  /// the same (requests, sampler_config, cluster config) always yields
  /// the same report, and generated token streams match a single card
  /// serving the same requests.
  StatusOr<ClusterReport> Run(const std::vector<ServingRequest>& requests,
                              const llama::SamplerConfig& sampler_config);

  /// Number of cards this router fans out over.
  int num_cards() const { return cards_.num_cards(); }
  /// The cluster configuration the router was built with.
  const ClusterConfig& config() const { return config_; }
  /// KV pool budget card `card` will use (after overrides/derivation).
  std::uint64_t pool_bytes(int card) const;

 private:
  const accel::Program* program_;
  const llama::Weights* weights_;
  hw::MultiCardConfig cards_;
  ClusterConfig config_;
};

}  // namespace speedllm::serving
