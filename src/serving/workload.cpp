#include "serving/workload.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "llama/config.hpp"
#include "llama/tokenizer.hpp"

namespace speedllm::serving {

namespace {

/// Exponential inter-arrival gap with mean 1/rate.
double ExpGap(Rng& rng, double rate) {
  double u = rng.NextDouble();
  if (u < 1e-12) u = 1e-12;
  return -std::log(u) / rate;
}

std::int32_t UniformInclusive(Rng& rng, std::int32_t lo, std::int32_t hi) {
  if (hi <= lo) return lo;
  return lo + static_cast<std::int32_t>(
                  rng.NextBounded(static_cast<std::uint64_t>(hi - lo + 1)));
}

/// Random non-control token id: skips the ids at the bottom of the
/// vocab when there is room (the llama2.c tokenizer reserves ~259 ids
/// for specials + raw bytes).
std::int32_t DrawToken(Rng& rng, std::int32_t vocab_size) {
  const std::int32_t lo = vocab_size > 300 ? 259 : 3;
  return lo + static_cast<std::int32_t>(
                  rng.NextBounded(static_cast<std::uint64_t>(vocab_size - lo)));
}

ServingRequest DrawRequest(Rng& rng, std::int32_t min_prompt,
                           std::int32_t max_prompt, std::int32_t min_new,
                           std::int32_t max_new, std::int32_t vocab_size,
                           double arrival) {
  ServingRequest req;
  const std::int32_t prompt_len =
      std::max<std::int32_t>(1, UniformInclusive(rng, min_prompt, max_prompt));
  req.prompt.reserve(static_cast<std::size_t>(prompt_len));
  req.prompt.push_back(llama::kBosToken);
  for (std::int32_t t = 1; t < prompt_len; ++t) {
    req.prompt.push_back(DrawToken(rng, vocab_size));
  }
  req.max_new_tokens =
      std::max<std::int32_t>(1, UniformInclusive(rng, min_new, max_new));
  req.arrival_seconds = arrival;
  return req;
}

ServingRequest MakeRequest(Rng& rng, const WorkloadConfig& config,
                           double arrival) {
  return DrawRequest(rng, config.min_prompt_tokens, config.max_prompt_tokens,
                     config.min_new_tokens, config.max_new_tokens,
                     config.vocab_size, arrival);
}

}  // namespace

std::vector<ServingRequest> PoissonTrace(Rng& rng,
                                         const WorkloadConfig& config) {
  std::vector<ServingRequest> trace;
  trace.reserve(static_cast<std::size_t>(config.num_requests));
  double now = 0.0;
  for (std::int32_t i = 0; i < config.num_requests; ++i) {
    now += ExpGap(rng, config.rate_rps);
    trace.push_back(MakeRequest(rng, config, now));
  }
  return trace;
}

ClosedLoopClientPool::ClosedLoopClientPool(std::uint64_t seed,
                                           const ClosedLoopConfig& config)
    : config_(config) {
  const std::int32_t n = std::max<std::int32_t>(0, config.num_users);
  users_.reserve(static_cast<std::size_t>(n));
  for (std::int32_t u = 0; u < n; ++u) {
    // Independent per-user streams, in the style of the per-request
    // sampler seeds: a user's trace depends only on its own draws.
    users_.emplace_back(seed + static_cast<std::uint64_t>(u + 1) * 7919);
  }
}

ServingRequest ClosedLoopClientPool::NextRequest(User& user,
                                                 double arrival_seconds) {
  ServingRequest req = DrawRequest(
      user.rng, config_.min_prompt_tokens, config_.max_prompt_tokens,
      config_.min_new_tokens, config_.max_new_tokens, config_.vocab_size,
      arrival_seconds);
  user.in_flight = true;
  ++user.issued;
  ++total_issued_;
  return req;
}

std::optional<ServingRequest> ClosedLoopClientPool::StartUser(
    std::int32_t user_id) {
  User& user = users_[static_cast<std::size_t>(user_id)];
  assert(user.issued == 0 && !user.in_flight &&
         "StartUser must run once, before any OnFinish");
  if (config_.requests_per_user <= 0) return std::nullopt;
  const double gap =
      ExpGap(user.rng, 1.0 / std::max(1e-12, config_.mean_think_seconds));
  return NextRequest(user, gap);
}

std::optional<ServingRequest> ClosedLoopClientPool::OnFinish(
    std::int32_t user_id, double now_seconds) {
  User& user = users_[static_cast<std::size_t>(user_id)];
  assert(user.in_flight &&
         "closed-loop invariant: OnFinish without a request in flight");
  user.in_flight = false;
  if (user.issued >= config_.requests_per_user) return std::nullopt;
  const double gap =
      ExpGap(user.rng, 1.0 / std::max(1e-12, config_.mean_think_seconds));
  return NextRequest(user, now_seconds + gap);
}

bool ClosedLoopClientPool::AllDone() const {
  for (const User& user : users_) {
    if (user.in_flight || user.issued < config_.requests_per_user) {
      return false;
    }
  }
  return true;
}

std::vector<ServingRequest> SharedPrefixTrace(
    Rng& rng, const SharedPrefixConfig& config) {
  // Materialize the shared system prompts first so the trace's prefixes
  // depend only on (seed, config), not on the arrival draws.
  const std::int32_t n_prefixes = std::max<std::int32_t>(1, config.num_prefixes);
  const std::int32_t prefix_len = std::max<std::int32_t>(2, config.prefix_tokens);
  std::vector<std::vector<std::int32_t>> prefixes(
      static_cast<std::size_t>(n_prefixes));
  for (auto& prefix : prefixes) {
    prefix.reserve(static_cast<std::size_t>(prefix_len));
    prefix.push_back(llama::kBosToken);
    for (std::int32_t t = 1; t < prefix_len; ++t) {
      prefix.push_back(DrawToken(rng, config.vocab_size));
    }
  }

  std::vector<ServingRequest> trace;
  trace.reserve(static_cast<std::size_t>(config.num_requests));
  double now = 0.0;
  for (std::int32_t i = 0; i < config.num_requests; ++i) {
    now += ExpGap(rng, config.rate_rps);
    ServingRequest req;
    req.arrival_seconds = now;
    req.max_new_tokens = std::max<std::int32_t>(
        1, UniformInclusive(rng, config.min_new_tokens, config.max_new_tokens));
    const std::int32_t suffix = std::max<std::int32_t>(
        1, UniformInclusive(rng, config.min_suffix_tokens,
                            config.max_suffix_tokens));
    if (rng.NextDouble() < config.shared_fraction) {
      // Shared system prompt + unique user suffix.
      req.prompt = prefixes[static_cast<std::size_t>(
          rng.NextBounded(static_cast<std::uint64_t>(n_prefixes)))];
      for (std::int32_t t = 0; t < suffix; ++t) {
        req.prompt.push_back(DrawToken(rng, config.vocab_size));
      }
    } else {
      // Fully unique prompt of comparable length: cache-neutral traffic.
      req.prompt.push_back(llama::kBosToken);
      const std::int32_t len = prefix_len + suffix;
      for (std::int32_t t = 1; t < len; ++t) {
        req.prompt.push_back(DrawToken(rng, config.vocab_size));
      }
    }
    trace.push_back(std::move(req));
  }
  return trace;
}

MultiTurnChatPool::MultiTurnChatPool(std::uint64_t seed,
                                     const MultiTurnConfig& config)
    : config_(config) {
  // The system prompt comes from its own stream so every user's first
  // turn opens identically (and prefix-shares across users).
  Rng system_rng(seed ^ 0x5e41f0ull);
  const std::int32_t sys =
      std::max<std::int32_t>(1, config_.system_prompt_tokens);
  system_prompt_.reserve(static_cast<std::size_t>(sys));
  system_prompt_.push_back(llama::kBosToken);
  for (std::int32_t t = 1; t < sys; ++t) {
    system_prompt_.push_back(DrawToken(system_rng, config_.vocab_size));
  }
  const std::int32_t n = std::max<std::int32_t>(0, config_.num_users);
  users_.reserve(static_cast<std::size_t>(n));
  for (std::int32_t u = 0; u < n; ++u) {
    users_.emplace_back(seed + static_cast<std::uint64_t>(u + 1) * 7919);
  }
}

ServingRequest MultiTurnChatPool::NextTurn(User& user,
                                           double arrival_seconds) {
  const std::int32_t msg = std::max<std::int32_t>(
      1, UniformInclusive(user.rng, config_.min_user_tokens,
                          config_.max_user_tokens));
  for (std::int32_t t = 0; t < msg; ++t) {
    user.history.push_back(DrawToken(user.rng, config_.vocab_size));
  }
  ServingRequest req;
  req.prompt = user.history;  // the whole conversation so far
  req.max_new_tokens = std::max<std::int32_t>(
      1, UniformInclusive(user.rng, config_.min_new_tokens,
                          config_.max_new_tokens));
  req.arrival_seconds = arrival_seconds;
  user.in_flight = true;
  ++user.turns;
  return req;
}

std::optional<ServingRequest> MultiTurnChatPool::StartUser(
    std::int32_t user_id) {
  User& user = users_[static_cast<std::size_t>(user_id)];
  assert(user.turns == 0 && !user.in_flight &&
         "StartUser must run once, before any OnFinish");
  if (config_.turns_per_user <= 0) return std::nullopt;
  user.history = system_prompt_;
  const double gap =
      ExpGap(user.rng, 1.0 / std::max(1e-12, config_.mean_think_seconds));
  return NextTurn(user, gap);
}

std::optional<ServingRequest> MultiTurnChatPool::OnFinish(
    std::int32_t user_id, double now_seconds,
    std::span<const std::int32_t> generated) {
  User& user = users_[static_cast<std::size_t>(user_id)];
  assert(user.in_flight &&
         "multi-turn invariant: OnFinish without a turn in flight");
  user.in_flight = false;
  // The assistant's (possibly hang-up-truncated) answer becomes part of
  // the conversation the next prompt replays.
  user.history.insert(user.history.end(), generated.begin(), generated.end());
  if (user.turns >= config_.turns_per_user) return std::nullopt;
  const double gap =
      ExpGap(user.rng, 1.0 / std::max(1e-12, config_.mean_think_seconds));
  return NextTurn(user, now_seconds + gap);
}

bool MultiTurnChatPool::AllDone() const {
  for (const User& user : users_) {
    if (user.in_flight || user.turns < config_.turns_per_user) return false;
  }
  return true;
}

// ------------------------------ scenario zoo --------------------------

RequestTier DrawTier(Rng& rng, const TierMix& mix) {
  const double w[kNumTiers] = {std::max(0.0, mix.interactive),
                               std::max(0.0, mix.standard),
                               std::max(0.0, mix.best_effort)};
  const double total = w[0] + w[1] + w[2];
  if (total <= 0.0) return RequestTier::kStandard;
  double u = rng.NextDouble() * total;
  for (int t = 0; t < kNumTiers; ++t) {
    if (u < w[t]) return static_cast<RequestTier>(t);
    u -= w[t];
  }
  return RequestTier::kBestEffort;  // float round-off on the last edge
}

void ApplyTierMix(Rng& rng, const TierMix& mix,
                  std::vector<ServingRequest>& trace) {
  for (ServingRequest& req : trace) req.tier = DrawTier(rng, mix);
}

namespace {

/// BOS-first block of `len` random non-control tokens.
std::vector<std::int32_t> DrawPrompt(Rng& rng, std::int32_t len,
                                     std::int32_t vocab_size) {
  std::vector<std::int32_t> prompt;
  const std::int32_t n = std::max<std::int32_t>(1, len);
  prompt.reserve(static_cast<std::size_t>(n));
  prompt.push_back(llama::kBosToken);
  for (std::int32_t t = 1; t < n; ++t) {
    prompt.push_back(DrawToken(rng, vocab_size));
  }
  return prompt;
}

}  // namespace

std::vector<ServingRequest> RagTrace(Rng& rng, const RagConfig& config) {
  // Materialize the retrieved contexts first so the shared documents
  // depend only on (seed, config), not on the arrival draws.
  const std::int32_t n_docs = std::max<std::int32_t>(1, config.num_documents);
  std::vector<std::vector<std::int32_t>> documents(
      static_cast<std::size_t>(n_docs));
  for (auto& doc : documents) {
    doc = DrawPrompt(rng, config.document_tokens, config.vocab_size);
  }

  std::vector<ServingRequest> trace;
  trace.reserve(static_cast<std::size_t>(config.num_requests));
  double now = 0.0;
  for (std::int32_t i = 0; i < config.num_requests; ++i) {
    now += ExpGap(rng, config.rate_rps);
    ServingRequest req;
    req.arrival_seconds = now;
    req.prompt = documents[static_cast<std::size_t>(
        rng.NextBounded(static_cast<std::uint64_t>(n_docs)))];
    const std::int32_t question = std::max<std::int32_t>(
        1, UniformInclusive(rng, config.min_question_tokens,
                            config.max_question_tokens));
    for (std::int32_t t = 0; t < question; ++t) {
      req.prompt.push_back(DrawToken(rng, config.vocab_size));
    }
    req.max_new_tokens = std::max<std::int32_t>(
        1, UniformInclusive(rng, config.min_new_tokens, config.max_new_tokens));
    req.tier = DrawTier(rng, config.tier_mix);
    trace.push_back(std::move(req));
  }
  return trace;
}

std::vector<ServingRequest> AgenticBurstTrace(
    Rng& rng, const AgenticBurstConfig& config) {
  // One shared scaffold opens every chain, so agents prefix-share it.
  const std::vector<std::int32_t> scaffold =
      DrawPrompt(rng, config.scaffold_tokens, config.vocab_size);

  std::vector<ServingRequest> trace;
  trace.reserve(static_cast<std::size_t>(config.num_agents) *
                static_cast<std::size_t>(config.steps_per_agent));
  double epoch = 0.0;
  for (std::int32_t a = 0; a < config.num_agents; ++a) {
    epoch += ExpGap(rng, 1.0 / std::max(1e-12, config.mean_agent_gap_seconds));
    std::vector<std::int32_t> transcript = scaffold;
    for (std::int32_t s = 0; s < config.steps_per_agent; ++s) {
      // The tool result lands in the transcript before the step runs;
      // each step replays the whole chain so far (prefix-cache food).
      const std::int32_t tool = std::max<std::int32_t>(
          1, UniformInclusive(rng, config.min_tool_tokens,
                              config.max_tool_tokens));
      for (std::int32_t t = 0; t < tool; ++t) {
        transcript.push_back(DrawToken(rng, config.vocab_size));
      }
      ServingRequest req;
      req.prompt = transcript;
      req.max_new_tokens = std::max<std::int32_t>(
          1, UniformInclusive(rng, config.min_new_tokens,
                              config.max_new_tokens));
      req.arrival_seconds =
          epoch + static_cast<double>(s) * config.step_gap_seconds;
      req.tier = DrawTier(rng, config.tier_mix);
      trace.push_back(std::move(req));
    }
  }
  // Chains overlap when an agent wakes before the previous burst's last
  // step; callers submit in arrival order.
  std::stable_sort(trace.begin(), trace.end(),
                   [](const ServingRequest& a, const ServingRequest& b) {
                     return a.arrival_seconds < b.arrival_seconds;
                   });
  return trace;
}

std::vector<ServingRequest> ParallelSamplingTrace(
    Rng& rng, const ParallelSamplingConfig& config) {
  const std::int32_t n = std::max<std::int32_t>(1, config.samples_per_prompt);
  std::vector<ServingRequest> trace;
  trace.reserve(static_cast<std::size_t>(config.num_groups) *
                static_cast<std::size_t>(n));
  double now = 0.0;
  for (std::int32_t g = 0; g < config.num_groups; ++g) {
    now += ExpGap(rng, config.rate_rps);
    const std::vector<std::int32_t> prompt = DrawPrompt(
        rng,
        UniformInclusive(rng, config.min_prompt_tokens,
                         config.max_prompt_tokens),
        config.vocab_size);
    const std::int32_t budget = std::max<std::int32_t>(
        1, UniformInclusive(rng, config.min_new_tokens, config.max_new_tokens));
    const RequestTier tier = DrawTier(rng, config.tier_mix);
    for (std::int32_t k = 0; k < n; ++k) {
      ServingRequest req;
      req.prompt = prompt;  // identical content: the pool COW-forks it
      req.max_new_tokens = budget;
      req.arrival_seconds = now;
      req.tier = tier;
      if (config.vary_temperature) {
        req.sampler.temperature = config.temperature_base +
                                  static_cast<float>(k) *
                                      config.temperature_step;
        req.sampler.has_temperature = true;
      }
      trace.push_back(std::move(req));
    }
  }
  return trace;
}

std::vector<ServingRequest> LongContextTrace(Rng& rng,
                                             const LongContextConfig& config) {
  std::vector<ServingRequest> trace;
  trace.reserve(static_cast<std::size_t>(config.num_requests));
  double now = 0.0;
  for (std::int32_t i = 0; i < config.num_requests; ++i) {
    now += ExpGap(rng, config.rate_rps);
    ServingRequest req;
    req.arrival_seconds = now;
    req.prompt = DrawPrompt(rng,
                            UniformInclusive(rng, config.min_context_tokens,
                                             config.max_context_tokens),
                            config.vocab_size);
    req.max_new_tokens = std::max<std::int32_t>(
        1, UniformInclusive(rng, config.min_new_tokens, config.max_new_tokens));
    req.tier = DrawTier(rng, config.tier_mix);
    trace.push_back(std::move(req));
  }
  return trace;
}

std::string_view ScenarioName(Scenario scenario) {
  switch (scenario) {
    case Scenario::kRag: return "rag";
    case Scenario::kAgentic: return "agentic";
    case Scenario::kParallelSampling: return "parallel_sampling";
    case Scenario::kLongContext: return "long_context";
  }
  return "unknown";
}

bool ScenarioFromName(std::string_view name, Scenario* out) {
  for (Scenario s : {Scenario::kRag, Scenario::kAgentic,
                     Scenario::kParallelSampling, Scenario::kLongContext}) {
    if (name == ScenarioName(s)) {
      *out = s;
      return true;
    }
  }
  return false;
}

std::vector<ServingRequest> ScenarioTrace(Rng& rng, Scenario scenario,
                                          std::int32_t num_requests) {
  switch (scenario) {
    case Scenario::kRag: {
      RagConfig cfg;
      if (num_requests > 0) cfg.num_requests = num_requests;
      return RagTrace(rng, cfg);
    }
    case Scenario::kAgentic: {
      AgenticBurstConfig cfg;
      if (num_requests > 0) {
        cfg.num_agents = std::max<std::int32_t>(
            1, num_requests / std::max<std::int32_t>(1, cfg.steps_per_agent));
      }
      return AgenticBurstTrace(rng, cfg);
    }
    case Scenario::kParallelSampling: {
      ParallelSamplingConfig cfg;
      if (num_requests > 0) {
        cfg.num_groups = std::max<std::int32_t>(
            1,
            num_requests / std::max<std::int32_t>(1, cfg.samples_per_prompt));
      }
      return ParallelSamplingTrace(rng, cfg);
    }
    case Scenario::kLongContext: {
      LongContextConfig cfg;
      if (num_requests > 0) cfg.num_requests = num_requests;
      return LongContextTrace(rng, cfg);
    }
  }
  return {};
}

std::vector<ServingRequest> BurstyTrace(Rng& rng,
                                        const WorkloadConfig& config) {
  std::vector<ServingRequest> trace;
  trace.reserve(static_cast<std::size_t>(config.num_requests));
  const std::int32_t burst = std::max<std::int32_t>(1, config.burst_size);
  const double epoch_rate = config.rate_rps / static_cast<double>(burst);
  double epoch = 0.0;
  while (static_cast<std::int32_t>(trace.size()) < config.num_requests) {
    epoch += ExpGap(rng, epoch_rate);
    for (std::int32_t b = 0;
         b < burst &&
         static_cast<std::int32_t>(trace.size()) < config.num_requests;
         ++b) {
      trace.push_back(MakeRequest(rng, config, epoch));
    }
  }
  return trace;
}

}  // namespace speedllm::serving
