#include "serving/workload.hpp"

#include <algorithm>
#include <cmath>

#include "llama/config.hpp"
#include "llama/tokenizer.hpp"

namespace speedllm::serving {

namespace {

/// Exponential inter-arrival gap with mean 1/rate.
double ExpGap(Rng& rng, double rate) {
  double u = rng.NextDouble();
  if (u < 1e-12) u = 1e-12;
  return -std::log(u) / rate;
}

std::int32_t UniformInclusive(Rng& rng, std::int32_t lo, std::int32_t hi) {
  if (hi <= lo) return lo;
  return lo + static_cast<std::int32_t>(
                  rng.NextBounded(static_cast<std::uint64_t>(hi - lo + 1)));
}

ServingRequest MakeRequest(Rng& rng, const WorkloadConfig& config,
                           double arrival) {
  ServingRequest req;
  const std::int32_t prompt_len = std::max<std::int32_t>(
      1, UniformInclusive(rng, config.min_prompt_tokens,
                          config.max_prompt_tokens));
  // Skip control ids at the bottom of the vocab when there is room (the
  // llama2.c tokenizer reserves ~259 ids for specials + raw bytes).
  const std::int32_t lo = config.vocab_size > 300 ? 259 : 3;
  req.prompt.reserve(static_cast<std::size_t>(prompt_len));
  req.prompt.push_back(llama::kBosToken);
  for (std::int32_t t = 1; t < prompt_len; ++t) {
    req.prompt.push_back(
        lo + static_cast<std::int32_t>(rng.NextBounded(
                 static_cast<std::uint64_t>(config.vocab_size - lo))));
  }
  req.max_new_tokens = std::max<std::int32_t>(
      1, UniformInclusive(rng, config.min_new_tokens, config.max_new_tokens));
  req.arrival_seconds = arrival;
  return req;
}

}  // namespace

std::vector<ServingRequest> PoissonTrace(Rng& rng,
                                         const WorkloadConfig& config) {
  std::vector<ServingRequest> trace;
  trace.reserve(static_cast<std::size_t>(config.num_requests));
  double now = 0.0;
  for (std::int32_t i = 0; i < config.num_requests; ++i) {
    now += ExpGap(rng, config.rate_rps);
    trace.push_back(MakeRequest(rng, config, now));
  }
  return trace;
}

std::vector<ServingRequest> BurstyTrace(Rng& rng,
                                        const WorkloadConfig& config) {
  std::vector<ServingRequest> trace;
  trace.reserve(static_cast<std::size_t>(config.num_requests));
  const std::int32_t burst = std::max<std::int32_t>(1, config.burst_size);
  const double epoch_rate = config.rate_rps / static_cast<double>(burst);
  double epoch = 0.0;
  while (static_cast<std::int32_t>(trace.size()) < config.num_requests) {
    epoch += ExpGap(rng, epoch_rate);
    for (std::int32_t b = 0;
         b < burst &&
         static_cast<std::int32_t>(trace.size()) < config.num_requests;
         ++b) {
      trace.push_back(MakeRequest(rng, config, epoch));
    }
  }
  return trace;
}

}  // namespace speedllm::serving
