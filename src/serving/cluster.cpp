#include "serving/cluster.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <utility>

#include "serving/shard.hpp"
#include "sim/engine.hpp"

namespace speedllm::serving {

std::string_view PlacementPolicyName(PlacementPolicy policy) {
  switch (policy) {
    case PlacementPolicy::kRoundRobin: return "round-robin";
    case PlacementPolicy::kLeastOutstandingTokens: return "least-outstanding";
    case PlacementPolicy::kBestFitFreeKv: return "best-fit-kv";
  }
  return "unknown";
}

double ClusterReport::imbalance() const {
  if (shard_reports.empty()) return 0.0;
  std::int64_t max_tokens = 0;
  std::int64_t sum_tokens = 0;
  for (const ServingReport& r : shard_reports) {
    max_tokens = std::max(max_tokens, r.total_tokens);
    sum_tokens += r.total_tokens;
  }
  if (sum_tokens == 0) return 0.0;
  const double mean = static_cast<double>(sum_tokens) /
                      static_cast<double>(shard_reports.size());
  return static_cast<double>(max_tokens) / mean;
}

double ClusterReport::mean_utilization() const {
  if (card_utilization.empty()) return 0.0;
  double sum = 0.0;
  for (double u : card_utilization) sum += u;
  return sum / static_cast<double>(card_utilization.size());
}

ClusterRouter::ClusterRouter(const accel::Program& program,
                             const llama::Weights& weights,
                             hw::MultiCardConfig cards, ClusterConfig config)
    : program_(&program),
      weights_(&weights),
      cards_(std::move(cards)),
      config_(std::move(config)) {
  config_.shard = NormalizeSchedulerConfig(config_.shard);
}

std::uint64_t ClusterRouter::pool_bytes(int card) const {
  std::uint64_t override_bytes = config_.shard.kv_pool_bytes;
  const std::size_t c = static_cast<std::size_t>(card);
  if (c < config_.kv_pool_bytes_per_card.size() &&
      config_.kv_pool_bytes_per_card[c] > 0) {
    override_bytes = config_.kv_pool_bytes_per_card[c];
  }
  return DeriveKvPoolBytes(*program_, cards_.cards[c], override_bytes);
}

namespace {

/// One Run() invocation: the shared engine, the per-card shards, and the
/// routing/rebalancing state.
class ClusterRun {
 public:
  ClusterRun(const accel::Program& program, const llama::Weights& weights,
             const hw::MultiCardConfig& cards, const ClusterConfig& config,
             const std::vector<std::uint64_t>& pool_bytes,
             const std::vector<ServingRequest>& requests,
             const llama::SamplerConfig& sampler_config)
      : config_(config),
        requests_(requests),
        sampler_config_(sampler_config),
        clock_mhz_(cards.cards.front().clock_mhz),
        shard_of_request_(requests.size(), -1),
        migrations_(requests.size(), 0) {
    const int n = cards.num_cards();
    shards_.reserve(static_cast<std::size_t>(n));
    for (int c = 0; c < n; ++c) {
      SchedulerConfig shard_config = config.shard;
      shard_config.kv_pool_bytes = pool_bytes[static_cast<std::size_t>(c)];
      shards_.push_back(std::make_unique<ShardScheduler>(
          program, weights, cards.cards[static_cast<std::size_t>(c)],
          shard_config, engine_));
      shards_.back()->set_kv_pressure_hook(
          [this, c] { Rebalance(static_cast<std::size_t>(c)); });
    }
  }

  StatusOr<ClusterReport> Execute() {
    for (std::size_t i = 0; i < requests_.size(); ++i) {
      const sim::Cycles at = ArrivalCycles(requests_[i].arrival_seconds);
      engine_.ScheduleAt(at, [this, i] { Place(i); });
    }
    engine_.Run();

    ClusterReport report;
    report.shard_of_request.assign(shard_of_request_.begin(),
                                   shard_of_request_.end());
    report.rebalanced_requests = rebalanced_;
    report.merged.outcomes.resize(requests_.size());
    report.card_utilization.resize(shards_.size(), 0.0);

    std::vector<double> busy(shards_.size(), 0.0);
    std::vector<std::size_t> stream_indices;
    for (std::size_t c = 0; c < shards_.size(); ++c) {
      SPEEDLLM_RETURN_IF_ERROR(shards_[c]->Finalize());
      busy[c] = shards_[c]->busy_seconds();
      ServingReport shard = shards_[c]->TakeReport(&stream_indices);
      for (std::size_t k = 0; k < stream_indices.size(); ++k) {
        report.merged.outcomes[stream_indices[k]] = shard.outcomes[k];
      }
      ServingReport& m = report.merged;
      m.total_tokens += shard.total_tokens;
      m.recomputed_tokens += shard.recomputed_tokens;
      m.preemptions += shard.preemptions;
      m.peak_kv_blocks += shard.peak_kv_blocks;
      m.kv_block_capacity += shard.kv_block_capacity;
      m.kv_capacity_bytes += shard.kv_capacity_bytes;
      m.kv_block_bytes = shard.kv_block_bytes;  // uniform block geometry
      m.mean_batch_width += shard.mean_batch_width *
                            static_cast<double>(shard.ticks);
      m.ticks += shard.ticks;
      m.makespan_seconds = std::max(m.makespan_seconds,
                                    shard.makespan_seconds);
      report.shard_reports.push_back(std::move(shard));
    }
    ServingReport& m = report.merged;
    if (m.ticks > 0) m.mean_batch_width /= static_cast<double>(m.ticks);
    m.device_tokens_per_second =
        m.makespan_seconds > 0.0
            ? static_cast<double>(m.total_tokens) / m.makespan_seconds
            : 0.0;
    for (std::size_t c = 0; c < shards_.size(); ++c) {
      report.card_utilization[c] =
          m.makespan_seconds > 0.0 ? busy[c] / m.makespan_seconds : 0.0;
    }
    return report;
  }

 private:
  sim::Cycles ArrivalCycles(double seconds) const {
    // Every card shares one kernel clock (MultiCardConfig::Validate), so
    // any shard's conversion works; shard 0 stands in for the cluster.
    return static_cast<sim::Cycles>(std::llround(
        seconds * clock_mhz_ * 1e6));
  }

  /// Routes request `i` to a card at its arrival event.
  void Place(std::size_t i) {
    const std::size_t card = PickCard(requests_[i]);
    shard_of_request_[i] = static_cast<std::int32_t>(card);
    shards_[card]->Submit(requests_[i], i, sampler_config_);
  }

  std::size_t PickCard(const ServingRequest& request) {
    switch (config_.placement) {
      case PlacementPolicy::kRoundRobin:
        return rr_counter_++ % shards_.size();
      case PlacementPolicy::kLeastOutstandingTokens: {
        std::size_t best = 0;
        std::int64_t best_tokens = shards_[0]->outstanding_tokens();
        for (std::size_t c = 1; c < shards_.size(); ++c) {
          const std::int64_t t = shards_[c]->outstanding_tokens();
          if (t < best_tokens) {
            best = c;
            best_tokens = t;
          }
        }
        return best;
      }
      case PlacementPolicy::kBestFitFreeKv: {
        // Most projected headroom among the cards that can cover the
        // request's full footprint outright; when no card can, fall back
        // to the most headroom overall (the shard's preemption machinery
        // absorbs the pressure). Ties break toward the lowest card id.
        std::size_t best = 0;
        std::int64_t best_free = shards_[0]->projected_free_kv_blocks();
        std::size_t covering = shards_.size();
        std::int64_t covering_free = 0;
        for (std::size_t c = 0; c < shards_.size(); ++c) {
          const std::int64_t f = shards_[c]->projected_free_kv_blocks();
          if (f > best_free) {
            best = c;
            best_free = f;
          }
          const std::int64_t need = shards_[c]->BlocksForRequest(request);
          if (f >= need && (covering == shards_.size() || f > covering_free)) {
            covering = c;
            covering_free = f;
          }
        }
        return covering != shards_.size() ? covering : best;
      }
    }
    return 0;
  }

  /// KV-pressure hook: shard `donor` could not admit (or decode) for want
  /// of blocks. Migrate its queued, never-prefilled requests to the card
  /// with the most projected-free blocks, newest first. Each request
  /// migrates at most (num_cards - 1) times, so rebalancing terminates
  /// even when every pool is tight.
  void Rebalance(std::size_t donor) {
    if (!config_.rebalance_queued || shards_.size() < 2) return;
    // Requests that exhausted their migration budget stay put; older
    // eligible queued requests behind them are still considered.
    const ShardScheduler::StreamPredicate eligible =
        [this](std::size_t stream) {
          return migrations_[stream] <
                 static_cast<std::int32_t>(shards_.size()) - 1;
        };
    while (true) {
      auto queued = shards_[donor]->PeekNewestQueued(eligible);
      if (!queued) return;
      const auto [request, stream] = *queued;
      const std::int64_t need = shards_[donor]->BlocksForRequest(*request);
      const std::int64_t donor_free =
          shards_[donor]->projected_free_kv_blocks();
      std::size_t target = donor;
      std::int64_t target_free = donor_free;
      for (std::size_t c = 0; c < shards_.size(); ++c) {
        if (c == donor) continue;
        const std::int64_t f = shards_[c]->projected_free_kv_blocks();
        if (f > target_free) {
          target = c;
          target_free = f;
        }
      }
      // Move only when the target is strictly better off AND can cover
      // the whole request; otherwise shuffling would not help anyone.
      if (target == donor || target_free < need) return;
      shards_[donor]->StealNewestQueued(eligible);
      ++migrations_[stream];
      ++rebalanced_;
      shard_of_request_[stream] = static_cast<std::int32_t>(target);
      shards_[target]->Submit(*request, stream, sampler_config_);
    }
  }

  const ClusterConfig& config_;
  const std::vector<ServingRequest>& requests_;
  const llama::SamplerConfig& sampler_config_;
  const double clock_mhz_;  // uniform across cards (Validate enforces)

  sim::Engine engine_;
  std::vector<std::unique_ptr<ShardScheduler>> shards_;
  std::vector<std::int32_t> shard_of_request_;
  std::vector<std::int32_t> migrations_;
  std::size_t rr_counter_ = 0;
  std::int64_t rebalanced_ = 0;
};

}  // namespace

StatusOr<ClusterReport> ClusterRouter::Run(
    const std::vector<ServingRequest>& requests,
    const llama::SamplerConfig& sampler_config) {
  SPEEDLLM_RETURN_IF_ERROR(cards_.Validate());
  ClusterReport report;
  report.shard_reports.resize(static_cast<std::size_t>(num_cards()));
  report.card_utilization.resize(static_cast<std::size_t>(num_cards()), 0.0);
  if (requests.empty()) return report;

  // A request must fit every card's pool: placement is free to pick any
  // card, and rebalancing may move queued work anywhere.
  const std::uint32_t bytes_per_token = KvBytesPerToken(program_->model);
  const std::uint64_t block_bytes =
      static_cast<std::uint64_t>(config_.shard.block_size_tokens) *
      bytes_per_token;
  std::vector<std::uint64_t> per_card_pool;
  std::int64_t min_blocks = std::numeric_limits<std::int64_t>::max();
  for (int c = 0; c < num_cards(); ++c) {
    const std::uint64_t bytes = pool_bytes(c);
    per_card_pool.push_back(bytes);
    const std::int64_t blocks =
        block_bytes == 0 ? 0 : static_cast<std::int64_t>(bytes / block_bytes);
    min_blocks = std::min(min_blocks, blocks);
  }
  for (std::size_t i = 0; i < requests.size(); ++i) {
    SPEEDLLM_RETURN_IF_ERROR(
        ValidateRequest(requests[i], "request " + std::to_string(i),
                        program_->model, min_blocks,
                        config_.shard.block_size_tokens));
  }

  ClusterRun run(*program_, *weights_, cards_, config_, per_card_pool,
                 requests, sampler_config);
  return run.Execute();
}

}  // namespace speedllm::serving
