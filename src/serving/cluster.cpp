#include "serving/cluster.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>
#include <limits>
#include <memory>
#include <string>
#include <utility>

#include "common/threadpool.hpp"
#include "obs/slo.hpp"
#include "serving/shard.hpp"

namespace speedllm::serving {

namespace {

/// Cluster-level event skeleton (card -1 = router; instants only).
obs::RequestEvent RouterEvent(obs::RequestEventKind kind, std::int64_t stream,
                              std::int32_t card, double t_seconds) {
  obs::RequestEvent ev;
  ev.kind = kind;
  ev.stream = stream;
  ev.card = card;
  ev.start_seconds = t_seconds;
  ev.end_seconds = t_seconds;
  return ev;
}

}  // namespace

std::string_view PlacementPolicyName(PlacementPolicy policy) {
  switch (policy) {
    case PlacementPolicy::kRoundRobin: return "round-robin";
    case PlacementPolicy::kLeastOutstandingTokens: return "least-outstanding";
    case PlacementPolicy::kBestFitFreeKv: return "best-fit-kv";
    case PlacementPolicy::kPrefixAffinity: return "prefix-affinity";
  }
  return "unknown";
}

std::string_view PrefixFetchPolicyName(PrefixFetchPolicy policy) {
  switch (policy) {
    case PrefixFetchPolicy::kAuto: return "auto";
    case PrefixFetchPolicy::kAlwaysFetch: return "always";
    case PrefixFetchPolicy::kNeverFetch: return "never";
  }
  return "unknown";
}

Status ValidateClusterRoles(const ClusterConfig& config, int num_cards) {
  if (config.shard_roles.empty()) return Status::Ok();
  if (static_cast<int>(config.shard_roles.size()) != num_cards) {
    return InvalidArgument(
        "shard_roles has " + std::to_string(config.shard_roles.size()) +
        " entries for " + std::to_string(num_cards) + " cards");
  }
  int prefill_capable = 0;
  int prefill = 0;
  int decode = 0;
  for (ShardRole role : config.shard_roles) {
    if (role != ShardRole::kDecode) ++prefill_capable;
    if (role == ShardRole::kPrefill) ++prefill;
    if (role == ShardRole::kDecode) ++decode;
  }
  if (prefill_capable == 0) {
    return InvalidArgument(
        "shard_roles needs at least one prefill-capable card "
        "(unified or prefill): decode shards never run first-pass prefill");
  }
  if (prefill > 0 && decode == 0) {
    return InvalidArgument(
        "prefill shards need at least one decode shard to ship KV to");
  }
  if (decode > 0 && prefill == 0) {
    return InvalidArgument(
        "decode shards need at least one prefill shard to feed them");
  }
  return Status::Ok();
}

double ClusterReport::imbalance() const {
  if (shard_reports.empty()) return 0.0;
  std::int64_t max_tokens = 0;
  std::int64_t sum_tokens = 0;
  for (const ServingReport& r : shard_reports) {
    max_tokens = std::max(max_tokens, r.total_tokens);
    sum_tokens += r.total_tokens;
  }
  if (sum_tokens == 0) return 0.0;
  const double mean = static_cast<double>(sum_tokens) /
                      static_cast<double>(shard_reports.size());
  return static_cast<double>(max_tokens) / mean;
}

double ClusterReport::mean_utilization() const {
  if (card_utilization.empty()) return 0.0;
  double sum = 0.0;
  for (double u : card_utilization) sum += u;
  return sum / static_cast<double>(card_utilization.size());
}

// ------------------------------------------------------- ClusterSession

ClusterSession::ClusterSession(const accel::Program& program,
                               const llama::Weights& weights,
                               const hw::MultiCardConfig& cards,
                               const ClusterConfig& config,
                               const llama::SamplerConfig& sampler_config)
    : program_(program),
      weights_(weights),
      cards_(cards),
      config_(config),
      sampler_config_(sampler_config),
      clock_mhz_(cards.cards.front().clock_mhz) {
  config_.shard = NormalizeSchedulerConfig(config_.shard);
  // One switch, one event path: the record_ticks compat flag implies
  // lifecycle tracing, and ServingReport::tick_log is rebuilt from the
  // shared event stream at harvest.
  obs::TelemetryConfig telemetry_config = config_.telemetry;
  telemetry_config.enable_tracing =
      telemetry_config.enable_tracing || config_.shard.record_ticks;
  if (telemetry_config.enabled()) {
    telemetry_ = std::make_unique<obs::Telemetry>(telemetry_config);
  }
  const int n = cards_.num_cards();
  shards_.reserve(static_cast<std::size_t>(n));
  min_pool_blocks_ = std::numeric_limits<std::int64_t>::max();
  for (int c = 0; c < n; ++c) {
    const std::size_t ci = static_cast<std::size_t>(c);
    SchedulerConfig shard_config = config_.shard;
    if (ci < cards_.kv_dtype_per_card.size()) {
      // Heterogeneous KV dtypes: each card's pool geometry (and hence
      // its block count) follows its own storage format.
      shard_config.kv_cache_dtype = cards_.kv_dtype_per_card[ci];
    }
    if (ci < config_.kv_pool_bytes_per_card.size() &&
        config_.kv_pool_bytes_per_card[ci] > 0) {
      shard_config.kv_pool_bytes = config_.kv_pool_bytes_per_card[ci];
    }
    if (!config_.shard_roles.empty()) {
      shard_config.role = config_.shard_roles[ci];
    }
    if (shard_config.role != ShardRole::kDecode) {
      placeable_.push_back(ci);
    }
    shard_config.kv_pool_bytes =
        DeriveKvPoolBytes(program, cards_.cards[ci], shard_config.kv_pool_bytes);
    const std::uint64_t block_bytes =
        MakeKvPoolConfig(program.model, shard_config.kv_cache_dtype,
                         shard_config.kv_pool_bytes,
                         shard_config.block_size_tokens,
                         shard_config.enable_prefix_cache)
            .block_bytes();
    min_pool_blocks_ = std::min(
        min_pool_blocks_,
        block_bytes == 0 ? std::int64_t{0}
                         : static_cast<std::int64_t>(shard_config.kv_pool_bytes /
                                                     block_bytes));
    shards_.push_back(std::make_unique<ShardScheduler>(
        program, weights, cards_.cards[ci], shard_config, engine_));
    if (telemetry_ != nullptr) {
      shards_.back()->set_telemetry(telemetry_->MakeShardChannel(c));
    }
    shards_.back()->set_kv_pressure_hook(
        [this, c] { Rebalance(static_cast<std::size_t>(c)); });
    // Shard-side emission wrappers are installed up front (before any
    // tick can run): they keep the per-stream records and the SLO
    // metrics current whether or not the caller ever registers hooks.
    shards_.back()->set_emission_hooks(
        [this](std::size_t stream, std::int32_t token, double t) {
          if (on_token_) on_token_(stream, token, t);
        },
        [this](std::size_t stream, FinishReason reason,
               const RequestOutcome& outcome, double t) {
          records_[stream].finished = true;
          if (reason == FinishReason::kCancelled) {
            records_[stream].cancelled = true;
          }
          ObserveSloMetrics(outcome, reason);
          if (on_finish_) on_finish_(stream, reason, outcome, t);
        });
  }
  // Every shard's local DMA and every cross-card KV move queue on one
  // shared station model; the directory mirrors each pool's index.
  interconnect_ = std::make_unique<Interconnect>(cards_);
  directory_ = std::make_unique<PrefixDirectory>();
  handoff_pending_tokens_.assign(shards_.size(), 0);
  for (int c = 0; c < n; ++c) {
    const std::size_t ci = static_cast<std::size_t>(c);
    shards_[ci]->set_interconnect(interconnect_.get(), c);
    if (c < 64) directory_->Attach(c, &shards_[ci]->mutable_pool());
    if (shards_[ci]->role() == ShardRole::kPrefill) {
      shards_[ci]->set_handoff_hook(
          [this, c](KvHandoff handoff, sim::Cycles ready) {
            HandleHandoff(std::move(handoff), ready, c);
          });
    }
  }
  if (config_.parallel_ticking) {
    for (int c = 0; c < n; ++c) {
      // One engine lane per card. A tick declines concurrency whenever
      // it could reach outside its shard: prefill handoffs always, and
      // rebalance-armed shards while a never-admitted request waits
      // (the only state in which the kv-pressure hook does anything).
      // Emission delivery is safe only while no user streaming hooks
      // are registered (hook code may Submit/Abort across shards).
      shards_[static_cast<std::size_t>(c)]->set_parallel_lane(
          c, config_.rebalance_queued && n > 1,
          [this] { return !on_token_ && !on_finish_; });
    }
    // Telemetry written inside a concurrently-executing lane event is
    // staged per event (obs::TelemetryStage, bound thread-locally on
    // the worker) and replayed at the barrier in serial commit order,
    // so traces and metric series are byte-identical to a serial run.
    sim::Engine::ParallelHooks hooks;
    hooks.begin_event = [this](std::uint64_t token) {
      auto stage = std::make_unique<obs::TelemetryStage>();
      obs::TelemetryStage::BindToThread(stage.get());
      std::lock_guard<std::mutex> lock(stage_mu_);
      stages_[token] = std::move(stage);
    };
    hooks.end_event = [this](std::uint64_t) {
      obs::TelemetryStage::BindToThread(nullptr);
    };
    hooks.commit_event = [this](std::uint64_t token) {
      std::unique_ptr<obs::TelemetryStage> stage;
      {
        std::lock_guard<std::mutex> lock(stage_mu_);
        auto it = stages_.find(token);
        if (it == stages_.end()) return;
        stage = std::move(it->second);
        stages_.erase(it);
      }
      stage->Replay();
    };
    engine_.set_parallel_hooks(std::move(hooks));
  }
  // Admission control starts from a full bucket; the first refill delta
  // is measured from t = 0.
  bucket_tokens_ = config_.shard.admission.burst_tokens;
  bucket_refill_seconds_ = 0.0;
  if (telemetry_ != nullptr && telemetry_->metrics() != nullptr) {
    slo_metrics_ = true;
    obs::MetricsRegistry& reg = *telemetry_->metrics();
    for (int t = 0; t < kNumTiers; ++t) {
      const std::string tier_name{
          RequestTierName(static_cast<RequestTier>(t))};
      goodput_ids_[static_cast<std::size_t>(t)] = reg.AddCounter(
          "speedllm_goodput_tokens_total",
          "Generated tokens of SLO-attaining finished requests", "tokens",
          {{"tier", tier_name}});
      slo_attained_ids_[static_cast<std::size_t>(t)] = reg.AddCounter(
          "speedllm_slo_requests_total",
          "Finished requests by SLO attainment", "requests",
          {{"tier", tier_name}, {"slo", "attained"}});
      slo_missed_ids_[static_cast<std::size_t>(t)] = reg.AddCounter(
          "speedllm_slo_requests_total",
          "Finished requests by SLO attainment", "requests",
          {{"tier", tier_name}, {"slo", "missed"}});
      shed_ids_[static_cast<std::size_t>(t)] = reg.AddCounter(
          "speedllm_shed_requests_total",
          "Requests rejected by admission control", "requests",
          {{"tier", tier_name}});
    }
    if (n > 1) {
      transfer_metrics_ = true;
      link_metric_ids_.assign(
          static_cast<std::size_t>(n) * static_cast<std::size_t>(n), 0);
      for (int s = 0; s < n; ++s) {
        for (int d = 0; d < n; ++d) {
          if (s == d) continue;
          link_metric_ids_[static_cast<std::size_t>(s) *
                               static_cast<std::size_t>(n) +
                           static_cast<std::size_t>(d)] =
              reg.AddCounter(
                  "speedllm_kv_transfer_bytes_total",
                  "KV bytes shipped card-to-card over the interconnect",
                  "bytes",
                  {{"src", std::to_string(s)}, {"dst", std::to_string(d)}});
        }
      }
      remote_hit_metric_id_ = reg.AddCounter(
          "speedllm_remote_prefix_hits_total",
          "Admissions served by fetching a remote card's cached prefix",
          "requests", {});
    }
  }
}

bool ClusterSession::ShouldShed(const ServingRequest& request, double now_s) {
  const AdmissionConfig& adm = config_.shard.admission;
  if (!adm.enable || adm.burst_tokens <= 0.0) return false;
  // Refill by the simulated time elapsed since the last arrival, then
  // draw this request's full eventual footprint. The tier's reserve
  // floor must survive the draw: best-effort requests bounce while the
  // bucket can still absorb an interactive burst.
  bucket_tokens_ = std::min(
      adm.burst_tokens,
      bucket_tokens_ +
          (now_s - bucket_refill_seconds_) * adm.rate_tokens_per_second);
  bucket_refill_seconds_ = now_s;
  const double cost = static_cast<double>(request.prompt.size()) +
                      static_cast<double>(request.max_new_tokens);
  const double reserve =
      adm.tier_reserve_fraction[static_cast<std::size_t>(
          TierIndex(request.tier))] *
      adm.burst_tokens;
  if (bucket_tokens_ - cost < reserve) return true;
  bucket_tokens_ -= cost;
  return false;
}

void ClusterSession::Shed(std::size_t stream_index, double now_s) {
  StreamRecord& rec = records_[stream_index];
  rec.finished = true;
  RequestOutcome outcome;
  outcome.arrival_seconds = std::min(rec.request->arrival_seconds, now_s);
  outcome.prompt_tokens =
      static_cast<std::int32_t>(rec.request->prompt.size());
  outcome.tier = rec.request->tier;
  outcome.finish_reason = FinishReason::kShed;
  outcome.admission_seconds = now_s;
  outcome.first_token_seconds = now_s;
  outcome.completion_seconds = now_s;
  const auto [it, inserted] =
      unplaced_outcomes_.emplace(stream_index, std::move(outcome));
  (void)inserted;
  if (telemetry_ != nullptr && telemetry_->trace() != nullptr) {
    obs::RequestEvent ev =
        RouterEvent(obs::RequestEventKind::kShed,
                    static_cast<std::int64_t>(stream_index), -1, now_s);
    ev.detail = RequestTierName(rec.request->tier);
    telemetry_->trace()->Record(std::move(ev));
  }
  if (slo_metrics_) {
    telemetry_->metrics()->Add(
        shed_ids_[static_cast<std::size_t>(TierIndex(rec.request->tier))],
        1.0);
  }
  if (on_finish_) {
    on_finish_(stream_index, FinishReason::kShed, it->second, now_s);
  }
}

void ClusterSession::ObserveSloMetrics(const RequestOutcome& outcome,
                                       FinishReason reason) {
  if (!slo_metrics_) return;
  if (reason != FinishReason::kLength && reason != FinishReason::kStop) {
    return;
  }
  const std::size_t t = static_cast<std::size_t>(TierIndex(outcome.tier));
  if (outcome.attains(config_.shard.tier_slo[t])) {
    telemetry_->metrics()->Add(slo_attained_ids_[t], 1.0);
    telemetry_->metrics()->Add(
        goodput_ids_[t], static_cast<double>(outcome.generated.size()));
  } else {
    telemetry_->metrics()->Add(slo_missed_ids_[t], 1.0);
  }
}

ClusterSession::~ClusterSession() = default;

double ClusterSession::now_seconds() const {
  return static_cast<double>(engine_.now()) / (clock_mhz_ * 1e6);
}

sim::Cycles ClusterSession::SecondsToCycles(double seconds) const {
  // Every card shares one kernel clock (MultiCardConfig::Validate), so
  // any shard's conversion works; card 0 stands in for the cluster.
  return static_cast<sim::Cycles>(std::llround(seconds * clock_mhz_ * 1e6));
}

Status ClusterSession::Validate(const ServingRequest& request,
                                const std::string& tag) const {
  return ValidateRequest(request, tag, program_.model, min_pool_blocks_,
                         config_.shard.block_size_tokens);
}

void ClusterSession::set_emission_hooks(TokenEmissionHook on_token,
                                        FinishEmissionHook on_finish) {
  // The shard-side wrappers were installed at construction and read
  // these members at call time, so assigning here is all there is to it.
  on_token_ = std::move(on_token);
  on_finish_ = std::move(on_finish);
}

void ClusterSession::SubmitAt(const ServingRequest* request,
                              std::size_t stream_index, sim::Cycles at) {
  if (records_.size() <= stream_index) {
    records_.resize(stream_index + 1);
  }
  records_[stream_index].request = request;
  const sim::Cycles when = std::max(at, engine_.now());
  if (telemetry_ != nullptr && telemetry_->trace() != nullptr) {
    obs::RequestEvent ev = RouterEvent(
        obs::RequestEventKind::kSubmit,
        static_cast<std::int64_t>(stream_index), -1,
        static_cast<double>(when) / (clock_mhz_ * 1e6));
    ev.tokens = static_cast<std::int64_t>(request->prompt.size());
    // The tier label rides on the submit event so SLO/goodput accounting
    // (obs::ComputeGoodput) needs nothing outside the event stream.
    ev.detail = RequestTierName(request->tier);
    telemetry_->trace()->Record(std::move(ev));
  }
  engine_.ScheduleAt(when, [this, stream_index] { Place(stream_index); });
}

Status ClusterSession::Cancel(std::size_t stream_index) {
  if (stream_index >= records_.size() ||
      records_[stream_index].request == nullptr) {
    return NotFound("stream " + std::to_string(stream_index) +
                    " was never submitted");
  }
  StreamRecord& rec = records_[stream_index];
  if (rec.finished) {
    return FailedPrecondition("stream " + std::to_string(stream_index) +
                              " already finished");
  }
  if (auto hit = handoff_in_flight_.find(stream_index);
      hit != handoff_in_flight_.end()) {
    // Prefill finished and the KV pages are mid-transfer: the prefill
    // shard already released the sequence and the decode shard has not
    // adopted it. Drop the handoff and finish the stream here with the
    // outcome it carried (TTFT was stamped on the prefill shard; no
    // token was ever emitted).
    KvHandoff handoff = std::move(hit->second);
    handoff_in_flight_.erase(hit);
    handoff_pending_tokens_[static_cast<std::size_t>(rec.shard)] -=
        handoff.request->max_new_tokens -
        static_cast<std::int64_t>(handoff.outcome.generated.size());
    rec.finished = true;
    rec.cancelled = true;
    const double now_s = now_seconds();
    RequestOutcome outcome = std::move(handoff.outcome);
    outcome.finish_reason = FinishReason::kCancelled;
    outcome.completion_seconds = now_s;
    const auto [it, inserted] =
        unplaced_outcomes_.emplace(stream_index, std::move(outcome));
    (void)inserted;
    if (telemetry_ != nullptr && telemetry_->trace() != nullptr) {
      telemetry_->trace()->Record(RouterEvent(
          obs::RequestEventKind::kCancel,
          static_cast<std::int64_t>(stream_index), rec.shard, now_s));
    }
    if (on_finish_) {
      on_finish_(stream_index, FinishReason::kCancelled, it->second, now_s);
    }
    return Status::Ok();
  }
  if (!rec.placed) {
    // The arrival event has not run yet: suppress it and synthesize the
    // outcome here (no shard ever saw this request). The arrival is
    // clamped to the cancel time -- the request's scheduled arrival lies
    // in the future, and an uncapped value would put negative latencies
    // into the merged percentiles.
    rec.finished = true;
    rec.cancelled = true;
    const double now_s = now_seconds();
    RequestOutcome outcome;
    outcome.arrival_seconds =
        std::min(rec.request->arrival_seconds, now_s);
    outcome.prompt_tokens =
        static_cast<std::int32_t>(rec.request->prompt.size());
    outcome.finish_reason = FinishReason::kCancelled;
    outcome.admission_seconds = now_s;
    outcome.first_token_seconds = now_s;
    outcome.completion_seconds = now_s;
    const auto [it, inserted] =
        unplaced_outcomes_.emplace(stream_index, std::move(outcome));
    (void)inserted;
    if (telemetry_ != nullptr && telemetry_->trace() != nullptr) {
      telemetry_->trace()->Record(
          RouterEvent(obs::RequestEventKind::kCancel,
                      static_cast<std::int64_t>(stream_index), -1, now_s));
    }
    if (on_finish_) {
      on_finish_(stream_index, FinishReason::kCancelled, it->second, now_s);
    }
    return Status::Ok();
  }
  // The shard's Abort marks the record finished through the wrapped
  // finish hook before returning.
  return shards_[static_cast<std::size_t>(rec.shard)]->Abort(stream_index);
}

/// Routes request `stream_index` to a card at its arrival event (after
/// the admission-control gate; a shed request never reaches a shard).
void ClusterSession::Place(std::size_t stream_index) {
  StreamRecord& rec = records_[stream_index];
  if (rec.cancelled) return;  // cancelled before arrival
  const double now_s = now_seconds();
  if (ShouldShed(*rec.request, now_s)) {
    Shed(stream_index, now_s);
    return;
  }
  const std::size_t card = PickCard(*rec.request);
  rec.shard = static_cast<std::int32_t>(card);
  if (telemetry_ != nullptr && telemetry_->trace() != nullptr) {
    obs::RequestEvent ev = RouterEvent(
        obs::RequestEventKind::kPlace,
        static_cast<std::int64_t>(stream_index),
        static_cast<std::int32_t>(card), now_seconds());
    ev.detail = PlacementPolicyName(config_.placement);
    telemetry_->trace()->Record(std::move(ev));
  }
  // Remote-prefix arbitration may defer Submit to the fetch transfer's
  // end; the record stays unplaced while the fetch is in flight so a
  // cancel takes the unplaced path and the deferred Submit is skipped.
  if (MaybeFetchPrefix(stream_index, card)) return;
  rec.placed = true;
  shards_[card]->Submit(*rec.request, stream_index, sampler_config_);
}

std::size_t ClusterSession::PickCard(const ServingRequest& request) {
  // Arrivals only land on prefill-capable cards (everything but
  // kDecode): decode specialists receive work exclusively as KV
  // handoffs. In unified mode `placeable_` is every card, so the
  // policies below behave exactly as before.
  const std::vector<std::size_t>& cards = placeable_;
  switch (config_.placement) {
    case PlacementPolicy::kRoundRobin:
      return cards[rr_counter_++ % cards.size()];
    case PlacementPolicy::kLeastOutstandingTokens: {
      // Tier-aware when tiers are enabled: a card is scored by the work
      // this request would actually wait behind -- tokens owed at its
      // own priority or higher. Lower-tier work does not count against
      // a card, because the new arrival outranks it in admission,
      // decode funding, and preemption. With tiers off every request is
      // equal and this is the plain outstanding-token count.
      const auto load = [&](std::size_t c) {
        return config_.shard.enable_tiers
                   ? shards_[c]->outstanding_tokens_at_or_above(request.tier)
                   : shards_[c]->outstanding_tokens();
      };
      std::size_t best = cards.front();
      std::int64_t best_tokens = load(best);
      for (std::size_t k = 1; k < cards.size(); ++k) {
        const std::int64_t t = load(cards[k]);
        if (t < best_tokens) {
          best = cards[k];
          best_tokens = t;
        }
      }
      return best;
    }
    case PlacementPolicy::kBestFitFreeKv: {
      // Most projected headroom among the cards that can cover the
      // request's full footprint outright; when no card can, fall back
      // to the most headroom overall (the shard's preemption machinery
      // absorbs the pressure). Ties break toward the lowest card id.
      std::size_t best = cards.front();
      std::int64_t best_free = shards_[best]->projected_free_kv_blocks();
      std::size_t covering = shards_.size();
      std::int64_t covering_free = 0;
      for (std::size_t c : cards) {
        const std::int64_t f = shards_[c]->projected_free_kv_blocks();
        if (f > best_free) {
          best = c;
          best_free = f;
        }
        const std::int64_t need = shards_[c]->BlocksForRequest(request);
        if (f >= need && (covering == shards_.size() || f > covering_free)) {
          covering = c;
          covering_free = f;
        }
      }
      return covering != shards_.size() ? covering : best;
    }
    case PlacementPolicy::kPrefixAffinity: {
      // Longest cached prefix wins: the owning card serves the request's
      // shared blocks without re-prefilling them. Ties (typically "no
      // card has anything cached") break toward the most projected-free
      // blocks, then the lowest card id.
      std::size_t best = cards.front();
      std::int64_t best_tokens = -1;
      std::int64_t best_free = 0;
      for (std::size_t c : cards) {
        const std::int64_t cached =
            shards_[c]
                ->pool()
                .MatchCachedPrefix(
                    request.prompt,
                    static_cast<std::int64_t>(request.prompt.size()))
                .matched_tokens;
        const std::int64_t f = shards_[c]->projected_free_kv_blocks();
        if (cached > best_tokens ||
            (cached == best_tokens && f > best_free)) {
          best = c;
          best_tokens = cached;
          best_free = f;
        }
      }
      return best;
    }
  }
  return 0;
}

/// KV-pressure hook: shard `donor` could not admit (or decode) for want
/// of blocks. Migrate its queued, never-prefilled requests to the card
/// with the most projected-free blocks, newest first. Each request
/// migrates at most (num_cards - 1) times, so rebalancing terminates
/// even when every pool is tight.
void ClusterSession::Rebalance(std::size_t donor) {
  if (!config_.rebalance_queued || shards_.size() < 2) return;
  // Requests that exhausted their migration budget stay put; older
  // eligible queued requests behind them are still considered.
  const ShardScheduler::StreamPredicate eligible =
      [this](std::size_t stream) {
        return records_[stream].migrations <
               static_cast<std::int32_t>(shards_.size()) - 1;
      };
  while (true) {
    auto queued = shards_[donor]->PeekNewestQueued(eligible);
    if (!queued) return;
    const auto [request, stream] = *queued;
    const std::int64_t need = shards_[donor]->BlocksForRequest(*request);
    const std::int64_t donor_free =
        shards_[donor]->projected_free_kv_blocks();
    std::size_t target = donor;
    std::int64_t target_free = donor_free;
    // Only prefill-capable cards can take a queued (never-prefilled)
    // request; decode shards relieve pressure via handoff adoption only.
    for (std::size_t c : placeable_) {
      if (c == donor) continue;
      const std::int64_t f = shards_[c]->projected_free_kv_blocks();
      if (f > target_free) {
        target = c;
        target_free = f;
      }
    }
    // Move only when the target is strictly better off AND can cover
    // the whole request; otherwise shuffling would not help anyone.
    if (target == donor || target_free < need) return;
    shards_[donor]->StealNewestQueued(eligible);
    ++records_[stream].migrations;
    ++rebalanced_;
    records_[stream].shard = static_cast<std::int32_t>(target);
    if (telemetry_ != nullptr && telemetry_->trace() != nullptr) {
      obs::RequestEvent ev = RouterEvent(
          obs::RequestEventKind::kMigrate, static_cast<std::int64_t>(stream),
          static_cast<std::int32_t>(target), now_seconds());
      ev.detail = "from card " + std::to_string(donor);
      telemetry_->trace()->Record(std::move(ev));
    }
    shards_[target]->Submit(*request, stream, sampler_config_);
  }
}

void ClusterSession::RecordTransfer(std::size_t stream_index,
                                    std::int32_t src, std::int32_t dst,
                                    std::int64_t bytes, sim::Cycles start,
                                    sim::Cycles end) {
  if (transfer_metrics_) {
    telemetry_->metrics()->Add(
        link_metric_ids_[static_cast<std::size_t>(src) * shards_.size() +
                         static_cast<std::size_t>(dst)],
        static_cast<double>(bytes));
  }
  if (telemetry_ == nullptr || telemetry_->trace() == nullptr) return;
  // Paired send/recv events share one window and byte count so
  // cross-card traffic shows up on BOTH cards' timelines and the
  // pairing is checkable (tools/check_telemetry.py).
  obs::RequestEvent send;
  send.kind = obs::RequestEventKind::kKvTransfer;
  send.stream = static_cast<std::int64_t>(stream_index);
  send.card = src;
  send.start_seconds = static_cast<double>(start) / (clock_mhz_ * 1e6);
  send.end_seconds = static_cast<double>(end) / (clock_mhz_ * 1e6);
  send.bytes = bytes;
  send.detail = "send";
  obs::RequestEvent recv = send;
  recv.card = dst;
  recv.detail = "recv";
  telemetry_->trace()->Record(std::move(send));
  telemetry_->trace()->Record(std::move(recv));
}

void ClusterSession::HandleHandoff(KvHandoff handoff, sim::Cycles ready,
                                   std::int32_t src) {
  // Destination: the decode card owing the fewest outstanding tokens
  // (lowest card id on ties) -- deterministic, and it balances remaining
  // decode work far better than KV headroom does when pools are large
  // relative to the working set.
  std::int32_t dst = -1;
  std::int64_t dst_owed = std::numeric_limits<std::int64_t>::max();
  for (std::size_t c = 0; c < shards_.size(); ++c) {
    if (shards_[c]->role() != ShardRole::kDecode) continue;
    const std::int64_t owed = shards_[c]->outstanding_tokens() +
                              handoff_pending_tokens_[c];
    if (owed < dst_owed) {
      dst = static_cast<std::int32_t>(c);
      dst_owed = owed;
    }
  }
  assert(dst >= 0 && "handoff hooks are only installed when a decode "
                     "card exists (ValidateClusterRoles)");
  const std::size_t stream = handoff.stream_index;
  const std::int64_t bytes = handoff.kv_bytes;
  const std::int64_t owed_tokens =
      handoff.request->max_new_tokens -
      static_cast<std::int64_t>(handoff.outcome.generated.size());
  handoff_pending_tokens_[static_cast<std::size_t>(dst)] += owed_tokens;
  const hw::TransferTiming window = interconnect_->Transfer(
      ready, static_cast<std::uint64_t>(bytes), src, dst);
  records_[stream].shard = dst;
  RecordTransfer(stream, src, dst, bytes, window.start, window.end);
  ++handoff_transfers_;
  handoff_in_flight_.emplace(stream, std::move(handoff));
  engine_.ScheduleAt(window.end, [this, dst, stream, owed_tokens] {
    auto it = handoff_in_flight_.find(stream);
    if (it == handoff_in_flight_.end()) return;  // cancelled mid-flight
    KvHandoff arrived = std::move(it->second);
    handoff_in_flight_.erase(it);
    handoff_pending_tokens_[static_cast<std::size_t>(dst)] -= owed_tokens;
    shards_[static_cast<std::size_t>(dst)]->AdoptHandoff(std::move(arrived));
  });
}

bool ClusterSession::MaybeFetchPrefix(std::size_t stream_index,
                                      std::size_t dst) {
  if (config_.prefix_fetch == PrefixFetchPolicy::kNeverFetch) return false;
  if (shards_.size() < 2 || dst >= 64) return false;
  const ShardScheduler& shard = *shards_[dst];
  const KvPoolConfig& pool_config = shard.pool().config();
  if (!pool_config.enable_prefix_cache) return false;
  const ServingRequest& request = *records_[stream_index].request;
  // Same cap as local admission: at least the last prompt token always
  // prefills, so its forward pass has KV to attend to.
  const std::int64_t cap =
      static_cast<std::int64_t>(request.prompt.size()) - 1;
  if (cap <= 0) return false;
  const std::int64_t local_tokens =
      shard.pool().MatchCachedPrefix(request.prompt, cap).matched_tokens;
  const PrefixDirectory::Location loc = directory_->Locate(
      request.prompt, cap, KvChainSeed(pool_config.dtype),
      pool_config.block_size_tokens, std::uint64_t{1} << dst);
  if (loc.matched_tokens <= local_tokens) return false;
  const std::int32_t src = std::countr_zero(loc.card_mask);
  const std::int64_t delta_tokens = loc.matched_tokens - local_tokens;
  const std::int64_t local_blocks =
      local_tokens / pool_config.block_size_tokens;
  const std::int64_t bytes =
      (loc.matched_blocks - local_blocks) *
      static_cast<std::int64_t>(pool_config.block_bytes());
  const sim::Cycles now = engine_.now();
  const sim::Cycles fetch_end = interconnect_->EstimateTransferEnd(
      now, static_cast<std::uint64_t>(bytes), src,
      static_cast<std::int32_t>(dst));
  const double fetch_seconds =
      static_cast<double>(fetch_end - now) / (clock_mhz_ * 1e6);
  const double recompute_seconds =
      shard.EstimateRecomputeSeconds(delta_tokens);
  const bool fetched =
      config_.prefix_fetch == PrefixFetchPolicy::kAlwaysFetch ||
      fetch_seconds <= recompute_seconds;
  fetch_log_.push_back({stream_index, src, static_cast<std::int32_t>(dst),
                        delta_tokens, bytes, fetch_seconds,
                        recompute_seconds, fetched});
  if (!fetched) return false;
  const hw::TransferTiming window = interconnect_->Transfer(
      now, static_cast<std::uint64_t>(bytes), src,
      static_cast<std::int32_t>(dst));
  RecordTransfer(stream_index, src, static_cast<std::int32_t>(dst), bytes,
                 window.start, window.end);
  if (transfer_metrics_) {
    telemetry_->metrics()->Add(remote_hit_metric_id_, 1.0);
  }
  ++remote_hits_;
  remote_hit_tokens_ += delta_tokens;
  const std::int64_t fetch_tokens = loc.matched_tokens;
  engine_.ScheduleAt(
      window.end, [this, stream_index, dst, fetch_tokens, delta_tokens] {
        StreamRecord& rec = records_[stream_index];
        if (rec.cancelled) return;  // cancelled while the fetch flew
        // The fetched pages land as ownerless cached blocks (no local
        // DMA: the interconnect already charged the write leg), then
        // the normal admission path maps them as a local cache hit.
        shards_[dst]->InstallCachedPrefix(rec.request->prompt, fetch_tokens);
        if (telemetry_ != nullptr && telemetry_->trace() != nullptr) {
          obs::RequestEvent ev = RouterEvent(
              obs::RequestEventKind::kRemoteHit,
              static_cast<std::int64_t>(stream_index),
              static_cast<std::int32_t>(dst), now_seconds());
          ev.tokens = delta_tokens;
          telemetry_->trace()->Record(std::move(ev));
        }
        rec.placed = true;
        shards_[dst]->Submit(*rec.request, stream_index, sampler_config_);
      });
  return true;
}

PrefixDirectorySnapshot ClusterSession::ExportPrefixDirectory() const {
  return directory_->Export();
}

void ClusterSession::ImportPrefixDirectory(
    const PrefixDirectorySnapshot& snapshot) {
  for (const PrefixDirectorySnapshot::Chain& chain : snapshot.chains) {
    const std::size_t card = static_cast<std::size_t>(chain.card);
    if (chain.card < 0 || card >= shards_.size()) continue;
    shards_[card]->InstallCachedPrefix(
        chain.tokens, static_cast<std::int64_t>(chain.tokens.size()));
  }
}

Status ClusterSession::Finalize() const {
  for (const auto& shard : shards_) {
    SPEEDLLM_RETURN_IF_ERROR(shard->Finalize());
  }
  return Status::Ok();
}

ClusterReport ClusterSession::Harvest() {
  ClusterReport report;
  report.shard_of_request.reserve(records_.size());
  for (const StreamRecord& rec : records_) {
    report.shard_of_request.push_back(rec.shard);
  }
  report.rebalanced_requests = rebalanced_;
  report.kv_transfer_bytes = interconnect_->total_transfer_bytes();
  report.kv_transfers = interconnect_->num_transfers();
  report.kv_handoffs = handoff_transfers_;
  report.remote_prefix_hits = remote_hits_;
  report.remote_prefix_hit_tokens = remote_hit_tokens_;
  for (std::size_t c = 0; c < shards_.size(); ++c) {
    const std::int32_t card = static_cast<std::int32_t>(c);
    report.card_transfer_out_bytes.push_back(
        interconnect_->transfer_out_bytes(card));
    report.card_transfer_in_bytes.push_back(
        interconnect_->transfer_in_bytes(card));
    report.card_local_dma_bytes.push_back(
        interconnect_->local_dma_bytes(card));
  }
  report.prefix_fetch_log = std::move(fetch_log_);
  report.merged.outcomes.resize(records_.size());
  report.card_utilization.resize(shards_.size(), 0.0);

  std::vector<double> busy(shards_.size(), 0.0);
  std::vector<std::size_t> stream_indices;
  for (std::size_t c = 0; c < shards_.size(); ++c) {
    busy[c] = shards_[c]->busy_seconds();
    ServingReport shard = shards_[c]->TakeReport(&stream_indices);
    for (std::size_t k = 0; k < stream_indices.size(); ++k) {
      report.merged.outcomes[stream_indices[k]] = shard.outcomes[k];
    }
    ServingReport& m = report.merged;
    m.total_tokens += shard.total_tokens;
    m.recomputed_tokens += shard.recomputed_tokens;
    m.preemptions += shard.preemptions;
    m.stopped_requests += shard.stopped_requests;
    m.cancelled_requests += shard.cancelled_requests;
    m.stop_saved_tokens += shard.stop_saved_tokens;
    m.prefix_cache_queries += shard.prefix_cache_queries;
    m.prefix_cache_hits += shard.prefix_cache_hits;
    m.prefix_cache_hit_tokens += shard.prefix_cache_hit_tokens;
    m.prefix_cache_lookup_tokens += shard.prefix_cache_lookup_tokens;
    m.cow_copies += shard.cow_copies;
    m.cache_evictions += shard.cache_evictions;
    m.dma_bytes_moved += shard.dma_bytes_moved;
    m.dma_time_seconds += shard.dma_time_seconds;
    m.spec_draft_tokens += shard.spec_draft_tokens;
    m.spec_accepted_tokens += shard.spec_accepted_tokens;
    m.spec_wasted_tokens += shard.spec_wasted_tokens;
    m.peak_kv_blocks += shard.peak_kv_blocks;
    m.kv_block_capacity += shard.kv_block_capacity;
    m.kv_capacity_bytes += shard.kv_capacity_bytes;
    m.kv_block_bytes = shard.kv_block_bytes;  // uniform block geometry
    m.mean_batch_width += shard.mean_batch_width *
                          static_cast<double>(shard.ticks);
    m.ticks += shard.ticks;
    m.makespan_seconds = std::max(m.makespan_seconds,
                                  shard.makespan_seconds);
    m.tick_log.insert(m.tick_log.end(), shard.tick_log.begin(),
                      shard.tick_log.end());
    report.shard_reports.push_back(std::move(shard));
  }
  ServingReport& m = report.merged;
  // Requests that never reached a shard: cancelled before placement, or
  // rejected by admission control at the arrival event.
  for (auto& [stream, outcome] : unplaced_outcomes_) {
    if (outcome.finish_reason == FinishReason::kShed) {
      ++m.shed_requests;
    } else {
      ++m.cancelled_requests;
    }
    m.outcomes[stream] = std::move(outcome);
  }
  // Interleave per-card tick logs into one clock-ordered timeline
  // (stable: same-time ticks keep card order).
  std::stable_sort(m.tick_log.begin(), m.tick_log.end(),
                   [](const TickRecord& a, const TickRecord& b) {
                     return a.start_seconds < b.start_seconds;
                   });
  if (m.ticks > 0) m.mean_batch_width /= static_cast<double>(m.ticks);
  m.device_tokens_per_second =
      m.makespan_seconds > 0.0
          ? static_cast<double>(m.total_tokens) / m.makespan_seconds
          : 0.0;
  // Goodput and per-tier SLO attainment come from the telemetry event
  // stream (obs::ComputeGoodput), not from a second bookkeeping path:
  // with tracing off the tier slices stay zero.
  if (telemetry_ != nullptr && telemetry_->trace() != nullptr) {
    obs::GoodputAccounting acc =
        obs::ComputeGoodput(telemetry_->trace()->events(),
                            config_.shard.tier_slo, m.makespan_seconds);
    m.tiers = acc.tiers;
    m.goodput_tokens_per_second = acc.goodput_tokens_per_second;
  }
  for (std::size_t c = 0; c < shards_.size(); ++c) {
    report.card_utilization[c] =
        m.makespan_seconds > 0.0 ? busy[c] / m.makespan_seconds : 0.0;
  }
  return report;
}

// -------------------------------------------------------- ClusterRouter

ClusterRouter::ClusterRouter(const accel::Program& program,
                             const llama::Weights& weights,
                             hw::MultiCardConfig cards, ClusterConfig config)
    : program_(&program),
      weights_(&weights),
      cards_(std::move(cards)),
      config_(std::move(config)) {
  config_.shard = NormalizeSchedulerConfig(config_.shard);
}

std::uint64_t ClusterRouter::pool_bytes(int card) const {
  std::uint64_t override_bytes = config_.shard.kv_pool_bytes;
  const std::size_t c = static_cast<std::size_t>(card);
  if (c < config_.kv_pool_bytes_per_card.size() &&
      config_.kv_pool_bytes_per_card[c] > 0) {
    override_bytes = config_.kv_pool_bytes_per_card[c];
  }
  return DeriveKvPoolBytes(*program_, cards_.cards[c], override_bytes);
}

StatusOr<ClusterReport> ClusterRouter::Run(
    const std::vector<ServingRequest>& requests,
    const llama::SamplerConfig& sampler_config) {
  SPEEDLLM_RETURN_IF_ERROR(cards_.Validate());
  SPEEDLLM_RETURN_IF_ERROR(ValidateClusterRoles(config_, num_cards()));
  if (requests.empty()) {
    ClusterReport report;
    report.shard_reports.resize(static_cast<std::size_t>(num_cards()));
    report.card_utilization.resize(static_cast<std::size_t>(num_cards()), 0.0);
    return report;
  }

  ClusterSession session(*program_, *weights_, cards_, config_,
                         sampler_config);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    SPEEDLLM_RETURN_IF_ERROR(
        session.Validate(requests[i], "request " + std::to_string(i)));
  }
  for (std::size_t i = 0; i < requests.size(); ++i) {
    session.SubmitAt(&requests[i], i,
                     session.SecondsToCycles(requests[i].arrival_seconds));
  }
  if (config_.parallel_ticking) {
    session.engine().RunParallel(ThreadPool::Global());
  } else {
    session.engine().Run();
  }
  SPEEDLLM_RETURN_IF_ERROR(session.Finalize());
  return session.Harvest();
}

}  // namespace speedllm::serving
