// SpeedLLM -- paged KV-cache block manager with prefix caching.
//
// Carves a slice of U280 HBM (hw::HbmConfig::capacity_bytes minus the
// resident-weight / scratch reservation) into fixed-size token blocks, in
// the style of vLLM's PagedAttention block allocator. Each resident
// sequence owns a block table (ordered list of physical block ids); a
// block holds `block_size_tokens` consecutive KV entries, so internal
// fragmentation is bounded by one block per sequence. The pool is a
// capacity/accounting model: the functional KV values live in the
// per-slot executor buffers, while this class decides who fits, who must
// be preempted, and what the HBM footprint is.
//
// Prefix caching (PR 4): blocks are reference-counted and full blocks
// are content-addressed by a hash chain over (prefix hash, block
// tokens). When a new sequence's prompt starts with a cached prefix,
// AcquireCachedPrefix maps the matching blocks into its table (refcounts
// bumped) so prefill skips those tokens entirely; a write into a
// shared/immutable block copies it first (copy-on-write). Cached blocks
// whose refcount drops to zero park on an LRU list and still count as
// free capacity -- they are evicted on demand, so caching never reduces
// schedulable capacity. A block is writable iff it has exactly one owner
// and is not in the cache index.
//
// KV dtype (PR 5): the byte geometry follows hw::KvCacheDtype. kFp16
// stores 2 bytes per KV element; kInt8 stores 1 byte per element plus a
// per-block fp32 scale per (layer, K|V) -- the same symmetric
// bookkeeping shape as quant::QuantizedTensor's per-group fp32 scales,
// with the group being one block's tokens. Int8 roughly halves
// bytes-per-token, so the same HBM budget holds ~2x the resident
// sequences. The cache-index hash seed mixes the dtype in, so an fp16
// block and an int8 block can never alias even if their token content is
// equal. The pool also counts simulated DMA traffic (bytes moved by
// copy-on-write, cache restore, and preemption swap-out); the scheduler
// turns those bytes into simulated time against the HBM bandwidth.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/status.hpp"
#include "hw/u280_config.hpp"
#include "llama/config.hpp"

/// \namespace speedllm
/// Root namespace of the SpeedLLM accelerator simulation and its
/// serving stack.

/// Serving stack: paged KV pool, continuous-batching scheduler, cluster
/// router, and the request/report vocabulary they share.
namespace speedllm::serving {

/// On-device KV-block storage format (re-exported from hw so serving
/// call sites can say serving::KvCacheDtype).
using KvCacheDtype = hw::KvCacheDtype;

/// Human-readable dtype name ("fp16" / "int8") for tables and logs.
std::string_view KvCacheDtypeName(KvCacheDtype dtype);

/// Bytes one token's K+V vectors occupy across all layers when stored as
/// `dtype` (payload only; int8's per-block scale metadata is
/// accounted separately by KvQuantMetadataBytesPerBlock). Defaults to
/// fp16, the on-device layout the serving stack models.
std::uint32_t KvBytesPerToken(const llama::ModelConfig& config,
                              KvCacheDtype dtype = KvCacheDtype::kFp16);

/// Per-block quantization metadata bytes for `dtype`: zero for fp16; for
/// int8 one fp32 scale per (layer, K|V) -- quant::QuantizedTensor's
/// symmetric (zero-point-free) per-group scale bookkeeping with one
/// group per block. Amortized over a whole block, so int8's
/// bytes-per-token stays close to half of fp16's.
std::uint32_t KvQuantMetadataBytesPerBlock(const llama::ModelConfig& config,
                                           KvCacheDtype dtype);

/// Cache-index hash-chain seed for `dtype`. Seeds differ per dtype, so
/// equal token content stored as fp16 and as int8 produces different
/// chain hashes -- the two representations are not interchangeable and
/// must never alias in a cache index.
std::uint64_t KvChainSeed(KvCacheDtype dtype);

/// Advances a chain hash by one full block of token content -- the same
/// mix every KvBlockPool uses for its content-address index. Exposed so
/// a cluster-wide directory (serving::PrefixDirectory) can walk the
/// identical chain without a pool instance.
std::uint64_t KvChainAdvance(std::uint64_t h,
                             std::span<const std::int32_t> block_tokens);

/// Observer of one pool's content-address index. The cluster-wide
/// prefix directory implements this to mirror which chain hashes each
/// card currently holds. Callbacks fire synchronously from inside the
/// pool's bookkeeping; implementations must not reenter the pool.
class KvCacheListener {
 public:
  virtual ~KvCacheListener() = default;
  /// A full block was content-addressed. `chain_hash` is the chain value
  /// *after* the block, `parent_hash` the value before it, and
  /// `block_tokens` the block's token content.
  virtual void OnCacheInsert(std::uint64_t chain_hash,
                             std::uint64_t parent_hash,
                             std::span<const std::int32_t> block_tokens) = 0;
  /// A cached block was evicted (its hash left the index).
  virtual void OnCacheEvict(std::uint64_t chain_hash) = 0;
};

/// Geometry and feature switches of one KvBlockPool.
struct KvPoolConfig {
  /// Total budget carved from HBM for this pool, bytes.
  std::uint64_t pool_bytes = 0;
  /// Tokens per physical block (vLLM-style fixed-size paging).
  std::uint32_t block_size_tokens = 16;
  /// KV payload bytes per token; see KvBytesPerToken.
  std::uint32_t bytes_per_token = 0;
  /// Storage format the byte geometry models; see KvCacheDtype.
  KvCacheDtype dtype = KvCacheDtype::kFp16;
  /// Per-block quantization metadata bytes (per-group scales);
  /// see KvQuantMetadataBytesPerBlock. Zero for fp16.
  std::uint32_t quant_metadata_bytes = 0;
  /// Content-address full blocks and share them across sequences with a
  /// common prefix. Off restores the PR-1 private-blocks-only behavior;
  /// token streams are byte-identical either way.
  bool enable_prefix_cache = true;

  /// Bytes one physical block occupies: payload plus quant metadata.
  std::uint64_t block_bytes() const {
    return static_cast<std::uint64_t>(block_size_tokens) * bytes_per_token +
           quant_metadata_bytes;
  }
};

/// Builds a pool config whose byte geometry (bytes_per_token and
/// quant_metadata_bytes) follows `dtype` for `model`.
KvPoolConfig MakeKvPoolConfig(const llama::ModelConfig& model,
                              KvCacheDtype dtype, std::uint64_t pool_bytes,
                              std::uint32_t block_size_tokens,
                              bool enable_prefix_cache);

/// Monotonic counters the pool maintains; every field only grows.
struct KvPoolStats {
  /// Fresh physical allocations (block boundaries + copy-on-write).
  std::int64_t block_allocs = 0;
  /// Blocks whose last owner released them (to the LRU list when cached,
  /// to the free list otherwise).
  std::int64_t block_frees = 0;
  /// Peak simultaneously-owned *physical* blocks. A block shared by N
  /// block tables counts once, not N times. Multiply by
  /// KvBlockPool::bytes_per_block() for the byte-level peak the HBM
  /// budget invariant is stated in.
  std::int64_t peak_used_blocks = 0;
  /// KvBlockPool::Register calls that succeeded.
  std::int64_t sequence_registers = 0;
  /// KvBlockPool::Release calls that succeeded.
  std::int64_t sequence_releases = 0;
  /// Releases flagged as scheduler swap-outs.
  std::int64_t preemption_releases = 0;

  // ----- prefix cache -----
  std::int64_t prefix_queries = 0;       ///< AcquireCachedPrefix calls
  std::int64_t prefix_hits = 0;          ///< queries matching >= 1 block
  std::int64_t prefix_hit_tokens = 0;    ///< tokens restored from cache
  std::int64_t prefix_lookup_tokens = 0; ///< tokens offered for matching
  std::int64_t shared_block_acquires = 0;  ///< refcount bumps on live blocks
  std::int64_t cache_block_reacquires = 0; ///< evictable blocks revived
  std::int64_t cow_copies = 0;           ///< copy-on-write block copies
  std::int64_t cache_insertions = 0;     ///< full blocks content-addressed
  std::int64_t cache_evictions = 0;      ///< LRU entries discarded for reuse
  std::int64_t remote_install_blocks = 0; ///< blocks installed by remote fetch

  // ----- simulated DMA traffic -----
  // Bytes the pool's bookkeeping implies actually move through HBM.
  // The pool is the byte authority; the scheduler converts deltas of
  // these counters into simulated seconds against hw::HbmConfig
  // bandwidth (SchedulerConfig::charge_dma_cost).
  /// Total DMA bytes moved: cow + restore + swap.
  std::int64_t dma_bytes_moved = 0;
  /// Bytes copied by copy-on-write (one block payload per copy).
  std::int64_t cow_dma_bytes = 0;
  /// Bytes read to rebuild executor KV from cached blocks at admission.
  std::int64_t restore_dma_bytes = 0;
  /// Bytes of privately-owned KV written out by preemption swap-outs.
  std::int64_t swap_dma_bytes = 0;

  // ----- speculative decoding (draft phases) -----
  std::int64_t spec_phases = 0;          ///< BeginSpeculation calls
  std::int64_t spec_draft_tokens = 0;    ///< tokens appended inside a draft phase
  std::int64_t spec_rollback_blocks = 0; ///< draft-only blocks freed by rollback
};

/// Result of a cached-prefix probe/acquisition.
struct PrefixMatch {
  /// Prompt tokens a consumer may treat as already resident.
  std::int64_t matched_tokens = 0;
  /// Cached blocks backing them (the last one may be partially consumed
  /// when the token cap bites mid-block; a write into it copies first).
  std::int64_t matched_blocks = 0;
  /// Matched blocks that already had a live owner -- mapping these
  /// consumes no free capacity (the rest revive off the LRU list).
  std::int64_t live_shared_blocks = 0;
};

/// Paged, reference-counted, content-addressed KV block allocator. See
/// the file comment for the memory model.
class KvBlockPool {
 public:
  /// `config.pool_bytes` and `config.bytes_per_token` must be non-zero.
  explicit KvBlockPool(const KvPoolConfig& config);

  // ----- capacity queries -----
  /// Physical blocks the pool was carved into.
  std::int64_t num_blocks() const { return num_blocks_; }
  /// Blocks with at least one live owner. Shared blocks count once.
  std::int64_t used_blocks() const { return used_blocks_; }
  /// Schedulable capacity: truly-free blocks plus evictable cached
  /// blocks. Caching never shrinks this.
  std::int64_t free_blocks() const { return num_blocks_ - used_blocks_; }
  /// Ownerless blocks still holding reusable cached content (LRU).
  std::int64_t evictable_blocks() const {
    return static_cast<std::int64_t>(lru_.size());
  }
  /// Content-addressed entries (live shared + evictable full blocks).
  std::int64_t cached_blocks() const {
    return static_cast<std::int64_t>(cache_.size());
  }
  /// The pool's byte budget (KvPoolConfig::pool_bytes).
  std::uint64_t capacity_bytes() const { return config_.pool_bytes; }
  /// Bytes one block occupies, payload + quant metadata. The conversion
  /// factor between every block-denominated counter (used_blocks,
  /// evictable_blocks, KvPoolStats::peak_used_blocks) and the
  /// byte-denominated HBM budget, so dtype changes cannot silently skew
  /// the capacity invariant.
  std::uint64_t bytes_per_block() const { return config_.block_bytes(); }
  /// Bytes currently owned: used_blocks() * bytes_per_block().
  std::uint64_t bytes_in_use() const {
    return static_cast<std::uint64_t>(used_blocks_) * config_.block_bytes();
  }
  /// Byte-level peak: KvPoolStats::peak_used_blocks * bytes_per_block().
  std::uint64_t peak_bytes_in_use() const {
    return static_cast<std::uint64_t>(stats_.peak_used_blocks) *
           config_.block_bytes();
  }
  /// The geometry this pool was built with.
  const KvPoolConfig& config() const { return config_; }

  /// Blocks a sequence of `tokens` tokens occupies (ceiling division).
  std::int64_t BlocksForTokens(std::int64_t tokens) const;

  /// True if `tokens` more tokens could be appended to a fresh sequence
  /// right now without preempting anyone (evicting cold cache is fine).
  bool CanReserve(std::int64_t tokens) const {
    return BlocksForTokens(tokens) <= free_blocks();
  }

  // ----- prefix cache -----
  /// Longest cached-prefix probe without mutating anything (placement
  /// policies and admission planning). `max_tokens` caps the usable
  /// match, e.g. prompt size minus one when the caller must still
  /// process the final prompt token for logits.
  PrefixMatch MatchCachedPrefix(std::span<const std::int32_t> tokens,
                                std::int64_t max_tokens) const;

  /// Installs the full blocks of `tokens` (capped at `max_tokens`) into
  /// the content-address index as ownerless evictable blocks, as if a
  /// sequence with that prefix had just released them -- the landing pad
  /// for a remote prefix fetch (the bytes arrived over the interconnect
  /// and now sit in this card's HBM) and for warm-starting a pool from a
  /// persisted directory snapshot. Already-cached blocks are skipped;
  /// installation stops early when no block can be allocated. Returns
  /// the number of prefix tokens cached after the call (including
  /// previously cached ones). No DMA is charged here: a cross-card fetch
  /// is costed by the interconnect, and a warm start models content that
  /// survived in HBM. No-op returning 0 when caching is disabled.
  std::int64_t InstallCachedPrefix(std::span<const std::int32_t> tokens,
                                   std::int64_t max_tokens);

  /// Registers `listener` for content-address index changes (nullptr
  /// detaches). The pool does not own it.
  void set_cache_listener(KvCacheListener* listener) {
    listener_ = listener;
  }

  // ----- sequence lifecycle -----
  /// Registers `seq` with an empty block table. Fails on duplicates.
  Status Register(std::uint64_t seq);

  /// Maps the longest cached prefix of `tokens` into `seq`'s block table
  /// (refcounts bumped, evictable blocks revived) and accounts
  /// min(matched full blocks * block_size, max_tokens) tokens as already
  /// present, so prefill can skip them. Must be called at most once per
  /// registration, before any Append. Never allocates, so it cannot run
  /// out of capacity. Returns the zero match when caching is disabled.
  /// Counts the matched blocks' bytes as restore DMA traffic (the
  /// on-device read that rebuilds the slot executor's KV).
  StatusOr<PrefixMatch> AcquireCachedPrefix(
      std::uint64_t seq, std::span<const std::int32_t> tokens,
      std::int64_t max_tokens);

  /// Accounts one more token (value `token`) for `seq`, allocating a
  /// fresh block when the tail is full (evicting the LRU cached block if
  /// the free list is dry) and copying the tail first when it is shared
  /// or cache-immutable (copy-on-write; the copied block's bytes count
  /// as DMA traffic). Full tails are sealed into the content-addressed
  /// cache. Returns kResourceExhausted when no block can be produced
  /// (callers preempt and retry).
  Status Append(std::uint64_t seq, std::int32_t token);

  /// Opens a draft (speculative) phase for `seq`: snapshots the
  /// sequence's {token count, block table length, chain hash, unsealed
  /// tail} so every Append made until RollbackSpeculation can be undone.
  /// While the phase is open, just-filled tails are *not* sealed into
  /// the content-address index (draft content must never pollute the
  /// prefix cache) and draft-only blocks are never shareable, so their
  /// refcount stays exactly one. Copy-on-write of a shared pre-mark tail
  /// still happens (and still counts DMA bytes) -- the private copy
  /// survives rollback holding the committed prefix, exactly the
  /// after-COW state a non-speculative write would have produced.
  /// Fails on unknown `seq` or a nested phase. Release mid-phase is
  /// legal (a Cancel mid-verify) and frees draft blocks with the rest.
  Status BeginSpeculation(std::uint64_t seq);

  /// Closes `seq`'s draft phase: frees every draft-only block past the
  /// snapshot (refcounts provably one, never cached) and restores the
  /// snapshot state, leaving the sequence byte-identical -- same token
  /// count, chain hash, and tail content -- to the moment
  /// BeginSpeculation ran. Fails when no phase is open.
  Status RollbackSpeculation(std::uint64_t seq);

  /// True while `seq` has an open draft phase.
  bool InSpeculation(std::uint64_t seq) const;

  /// Drops `seq`'s references and forgets it. Blocks whose refcount hits
  /// zero return to the free list, or to the evictable LRU list when
  /// they hold cached content; co-owners of shared blocks are never
  /// affected. `preempted` marks the release as a scheduler swap-out and
  /// counts the sequence's privately-owned bytes as swap DMA traffic.
  Status Release(std::uint64_t seq, bool preempted = false);

  /// True when `seq` is registered.
  bool Contains(std::uint64_t seq) const { return seqs_.count(seq) > 0; }
  /// Registered sequences.
  std::int64_t num_sequences() const {
    return static_cast<std::int64_t>(seqs_.size());
  }
  /// Tokens currently accounted for `seq` (0 if unknown).
  std::int64_t SequenceTokens(std::uint64_t seq) const;
  /// Physical block ids of `seq`, in token order. `seq` must be registered.
  const std::vector<std::int32_t>& BlockTable(std::uint64_t seq) const;

  // ----- introspection (tests / invariant checks) -----
  /// Live owners of physical block `block` (0 for free/evictable).
  std::int32_t BlockRefCount(std::int32_t block) const;
  /// True when `block` is content-addressed (shared-immutable or LRU).
  bool BlockIsCached(std::int32_t block) const;

  // ----- fragmentation / utilization -----
  /// Allocated-but-unused tail bytes across private partial tails
  /// (internal fragmentation; fixed-size paging has no external
  /// fragmentation, and shared/cached blocks are always full).
  std::uint64_t fragmentation_bytes() const;
  /// Fraction of the pool's blocks with a live owner.
  double utilization() const {
    return num_blocks_ == 0 ? 0.0
                            : static_cast<double>(used_blocks_) /
                                  static_cast<double>(num_blocks_);
  }

  /// Monotonic operation counters; see KvPoolStats.
  const KvPoolStats& stats() const { return stats_; }

 private:
  struct BlockMeta {
    std::int32_t refcount = 0;
    bool cached = false;        // present in the content-address index
    std::uint64_t hash = 0;     // chain hash (valid while cached)
    std::uint64_t lru_stamp = 0;  // key into lru_ while evictable
  };

  struct SeqState {
    std::vector<std::int32_t> blocks;
    std::int64_t tokens = 0;
    /// Hash chain over the sealed (full) prefix blocks.
    std::uint64_t chain_hash = 0;
    /// Token values in the unsealed tail; size == tokens % block_size.
    std::vector<std::int32_t> tail;
    /// Draft phase open (BeginSpeculation without a rollback yet).
    bool speculating = false;
    /// Snapshot for RollbackSpeculation, valid while `speculating`.
    std::int64_t spec_tokens = 0;
    std::size_t spec_num_blocks = 0;
    std::uint64_t spec_chain_hash = 0;
    std::vector<std::int32_t> spec_tail;
  };

  /// Longest run of cached full blocks prefixing `tokens`, bounded so no
  /// block past `max_tokens` is walked. Appends the matching physical
  /// blocks and the chain hash *before* each of them to the out-params.
  std::int64_t WalkCachedPrefix(std::span<const std::int32_t> tokens,
                                std::int64_t max_tokens,
                                std::vector<std::int32_t>* blocks,
                                std::vector<std::uint64_t>* chain_before) const;
  /// Pops a free block, or evicts the LRU cached block. -1 when neither
  /// exists. The caller sets the refcount and usage accounting.
  std::int32_t AllocateBlock();
  /// Takes ownership accounting for a freshly produced block.
  void AdoptBlock(SeqState& state, std::int32_t block, bool replace_tail);
  /// Drops one reference; a last owner parks the block on the LRU list
  /// (cached) or the free list.
  void DropBlockRef(std::int32_t block);
  /// Seals a just-filled private tail: advances the chain hash and
  /// content-addresses the block unless equal content is already cached.
  void SealTailBlock(SeqState& state);

  KvPoolConfig config_;
  std::uint64_t chain_seed_ = 0;  // KvChainSeed(config_.dtype)
  std::int64_t num_blocks_ = 0;
  std::int64_t used_blocks_ = 0;
  std::vector<std::int32_t> free_list_;  // LIFO for deterministic reuse
  std::vector<BlockMeta> meta_;
  std::unordered_map<std::uint64_t, std::int32_t> cache_;  // chain hash -> block
  std::map<std::uint64_t, std::int32_t> lru_;  // eviction stamp -> block
  std::uint64_t lru_tick_ = 0;
  std::map<std::uint64_t, SeqState> seqs_;
  KvPoolStats stats_;
  KvCacheListener* listener_ = nullptr;
};

}  // namespace speedllm::serving
