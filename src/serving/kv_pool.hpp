// SpeedLLM -- paged KV-cache block manager.
//
// Carves a slice of U280 HBM (hw::HbmConfig::capacity_bytes minus the
// resident-weight / scratch reservation) into fixed-size token blocks, in
// the style of vLLM's PagedAttention block allocator. Each resident
// sequence owns a block table (ordered list of physical block ids); a
// block holds `block_size_tokens` consecutive KV entries for one
// sequence, so internal fragmentation is bounded by one block per
// sequence. The pool is a capacity/accounting model: the functional KV
// values live in the per-slot executor buffers, while this class decides
// who fits, who must be preempted, and what the HBM footprint is.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/status.hpp"
#include "llama/config.hpp"

namespace speedllm::serving {

/// Bytes one token's K+V vectors occupy across all layers (fp32 cache,
/// matching the executor's on-device layout).
std::uint32_t KvBytesPerToken(const llama::ModelConfig& config);

struct KvPoolConfig {
  std::uint64_t pool_bytes = 0;        // total budget carved from HBM
  std::uint32_t block_size_tokens = 16;
  std::uint32_t bytes_per_token = 0;   // see KvBytesPerToken

  std::uint64_t block_bytes() const {
    return static_cast<std::uint64_t>(block_size_tokens) * bytes_per_token;
  }
};

struct KvPoolStats {
  std::int64_t block_allocs = 0;
  std::int64_t block_frees = 0;
  std::int64_t peak_used_blocks = 0;
  std::int64_t sequence_registers = 0;
  std::int64_t sequence_releases = 0;
  std::int64_t preemption_releases = 0;  // releases flagged as swap-outs
};

class KvBlockPool {
 public:
  /// `config.pool_bytes` and `config.bytes_per_token` must be non-zero.
  explicit KvBlockPool(const KvPoolConfig& config);

  // ----- capacity queries -----
  std::int64_t num_blocks() const { return num_blocks_; }
  std::int64_t used_blocks() const { return used_blocks_; }
  std::int64_t free_blocks() const { return num_blocks_ - used_blocks_; }
  std::uint64_t capacity_bytes() const { return config_.pool_bytes; }
  std::uint64_t bytes_in_use() const {
    return static_cast<std::uint64_t>(used_blocks_) * config_.block_bytes();
  }
  const KvPoolConfig& config() const { return config_; }

  /// Blocks a sequence of `tokens` tokens occupies (ceiling division).
  std::int64_t BlocksForTokens(std::int64_t tokens) const;

  /// True if `tokens` more tokens could be appended to a fresh sequence
  /// right now without evicting anyone.
  bool CanReserve(std::int64_t tokens) const {
    return BlocksForTokens(tokens) <= free_blocks();
  }

  // ----- sequence lifecycle -----
  /// Registers `seq` with an empty block table. Fails on duplicates.
  Status Register(std::uint64_t seq);

  /// Accounts one more token for `seq`, allocating a fresh block when the
  /// current tail block is full. Returns kResourceExhausted when the pool
  /// is out of blocks (callers preempt and retry).
  Status Append(std::uint64_t seq);

  /// Frees all blocks of `seq` and forgets it. `preempted` marks the
  /// release as a scheduler swap-out in the stats.
  Status Release(std::uint64_t seq, bool preempted = false);

  bool Contains(std::uint64_t seq) const { return seqs_.count(seq) > 0; }
  std::int64_t num_sequences() const {
    return static_cast<std::int64_t>(seqs_.size());
  }
  /// Tokens currently accounted for `seq` (0 if unknown).
  std::int64_t SequenceTokens(std::uint64_t seq) const;
  /// Physical block ids of `seq`, in token order. `seq` must be registered.
  const std::vector<std::int32_t>& BlockTable(std::uint64_t seq) const;

  // ----- fragmentation / utilization -----
  /// Allocated-but-unused tail bytes across all block tables (internal
  /// fragmentation; fixed-size paging has no external fragmentation).
  std::uint64_t fragmentation_bytes() const;
  /// Fraction of the pool's blocks currently allocated.
  double utilization() const {
    return num_blocks_ == 0 ? 0.0
                            : static_cast<double>(used_blocks_) /
                                  static_cast<double>(num_blocks_);
  }

  const KvPoolStats& stats() const { return stats_; }

 private:
  struct SeqState {
    std::vector<std::int32_t> blocks;
    std::int64_t tokens = 0;
  };

  KvPoolConfig config_;
  std::int64_t num_blocks_ = 0;
  std::int64_t used_blocks_ = 0;
  std::int64_t total_tokens_ = 0;
  std::vector<std::int32_t> free_list_;  // LIFO for deterministic reuse
  std::map<std::uint64_t, SeqState> seqs_;
  KvPoolStats stats_;
};

}  // namespace speedllm::serving
