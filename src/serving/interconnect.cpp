#include "serving/interconnect.hpp"

#include <algorithm>
#include <cassert>
#include <map>
#include <mutex>
#include <unordered_map>

namespace speedllm::serving {

// ---------------------------------------------------------- Interconnect

Interconnect::Interconnect(const hw::MultiCardConfig& cards)
    : config_(cards.interconnect) {
  const std::size_t n = cards.cards.size();
  assert(n > 0 && "interconnect needs at least one card");
  hbm_.reserve(n);
  stacks_.reserve(n);
  local_dma_bytes_.assign(n, 0);
  link_bytes_.assign(n * n, 0);
  for (std::size_t c = 0; c < n; ++c) {
    // Descriptor setup serializes with the move on the real DMA engine,
    // so fold it into the stack's start latency: every queued transfer
    // then costs setup + latency + streaming end to end, which keeps the
    // uncontended (and back-to-back) cost bit-identical to the PR-5
    // additive ChargeDma model.
    hw::HbmConfig cfg = cards.cards[c].hbm;
    cfg.latency_cycles += cfg.dma_setup_cycles;
    hbm_.push_back(cfg);
    stacks_.push_back(std::make_unique<hw::HbmStack>(cfg));
  }
  links_.reserve(n * n);
  for (std::size_t s = 0; s < n; ++s) {
    for (std::size_t d = 0; d < n; ++d) {
      links_.emplace_back("ic.s" + std::to_string(s) + ".d" +
                          std::to_string(d));
    }
  }
}

sim::Cycles Interconnect::LinkCycles(std::uint64_t bytes) const {
  const std::uint64_t per_cycle =
      std::max<std::uint64_t>(1, config_.link_bytes_per_cycle);
  return config_.link_latency_cycles + (bytes + per_cycle - 1) / per_cycle;
}

hw::TransferTiming Interconnect::LocalDma(sim::Cycles ready,
                                          std::uint64_t bytes,
                                          std::int32_t card) {
  const std::size_t c = static_cast<std::size_t>(card);
  assert(c < stacks_.size());
  local_dma_bytes_[c] += static_cast<std::int64_t>(bytes);
  const hw::TransferTiming window = stacks_[c]->Transfer(
      ready, bytes, 0, hbm_[c].num_channels, /*is_read=*/false);
  return hw::TransferTiming{ready, window.end};
}

hw::TransferTiming Interconnect::Transfer(sim::Cycles ready,
                                          std::uint64_t bytes,
                                          std::int32_t src,
                                          std::int32_t dst) {
  const std::size_t s = static_cast<std::size_t>(src);
  const std::size_t d = static_cast<std::size_t>(dst);
  assert(s < stacks_.size() && d < stacks_.size() && s != d);
  link_bytes_[LinkIndex(src, dst)] += static_cast<std::int64_t>(bytes);
  ++num_transfers_;
  const hw::TransferTiming read = stacks_[s]->Transfer(
      ready, bytes, 0, hbm_[s].num_channels, /*is_read=*/true);
  const sim::Cycles link_start =
      links_[LinkIndex(src, dst)].Acquire(read.end, LinkCycles(bytes));
  const sim::Cycles link_end = link_start + LinkCycles(bytes);
  const hw::TransferTiming write = stacks_[d]->Transfer(
      link_end, bytes, 0, hbm_[d].num_channels, /*is_read=*/false);
  return hw::TransferTiming{ready, write.end};
}

sim::Cycles Interconnect::EstimateTransferEnd(sim::Cycles ready,
                                              std::uint64_t bytes,
                                              std::int32_t src,
                                              std::int32_t dst) const {
  const std::size_t s = static_cast<std::size_t>(src);
  const std::size_t d = static_cast<std::size_t>(dst);
  assert(s < stacks_.size() && d < stacks_.size() && s != d);
  auto group_start = [](const hw::HbmStack& stack, sim::Cycles at) {
    sim::Cycles start = at;
    for (int c = 0; c < stack.num_channels(); ++c) {
      start = std::max(start, stack.channel(c).EarliestStart(at));
    }
    return start;
  };
  const sim::Cycles read_start = group_start(*stacks_[s], ready);
  const sim::Cycles read_end =
      read_start + stacks_[s]->TransferCycles(bytes, hbm_[s].num_channels);
  const sim::Cycles link_start =
      links_[LinkIndex(src, dst)].EarliestStart(read_end);
  const sim::Cycles link_end = link_start + LinkCycles(bytes);
  const sim::Cycles write_start = group_start(*stacks_[d], link_end);
  return write_start + stacks_[d]->TransferCycles(bytes, hbm_[d].num_channels);
}

std::int64_t Interconnect::transfer_out_bytes(std::int32_t card) const {
  std::int64_t total = 0;
  for (std::int32_t d = 0; d < num_cards(); ++d) {
    if (d != card) total += link_bytes(card, d);
  }
  return total;
}

std::int64_t Interconnect::transfer_in_bytes(std::int32_t card) const {
  std::int64_t total = 0;
  for (std::int32_t s = 0; s < num_cards(); ++s) {
    if (s != card) total += link_bytes(s, card);
  }
  return total;
}

std::int64_t Interconnect::total_transfer_bytes() const {
  std::int64_t total = 0;
  for (std::int64_t b : link_bytes_) total += b;
  return total;
}

// ------------------------------------------------------- PrefixDirectory

struct PrefixDirectory::CardListener : KvCacheListener {
  PrefixDirectory* owner = nullptr;
  std::int32_t card = 0;
  KvBlockPool* pool = nullptr;

  void OnCacheInsert(std::uint64_t chain_hash, std::uint64_t parent_hash,
                     std::span<const std::int32_t> block_tokens) override {
    owner->OnInsert(card, chain_hash, parent_hash, block_tokens);
  }
  void OnCacheEvict(std::uint64_t chain_hash) override {
    owner->OnEvict(card, chain_hash);
  }
};

struct PrefixDirectory::Impl {
  struct Entry {
    std::vector<std::int32_t> tokens;  // this block's content
    std::uint64_t parent = 0;          // chain hash before this block
    bool root = false;                 // parent is a pool chain seed
    std::uint64_t cards = 0;           // bitmask of holders
  };
  std::vector<std::unique_ptr<CardListener>> listeners;
  std::unordered_map<std::uint64_t, Entry> entries;
  std::vector<std::uint64_t> seeds;  // chain seeds of attached pools
  std::uint64_t attached_mask = 0;
  // Pool cache listeners fire from inside shard ticks, which may run
  // concurrently under sim::Engine::RunParallel. Insert/evict are
  // commutative (a content-keyed holder bitmask), so guarding the map
  // is enough to keep the directory deterministic; Export() sorts.
  mutable std::mutex mu;
};

PrefixDirectory::PrefixDirectory() : impl_(std::make_unique<Impl>()) {}

PrefixDirectory::~PrefixDirectory() {
  for (const auto& l : impl_->listeners) {
    if (l->pool != nullptr) l->pool->set_cache_listener(nullptr);
  }
}

void PrefixDirectory::Attach(std::int32_t card, KvBlockPool* pool) {
  assert(card >= 0 && card < 64 && "directory card masks are 64-bit");
  auto listener = std::make_unique<CardListener>();
  listener->owner = this;
  listener->card = card;
  listener->pool = pool;
  pool->set_cache_listener(listener.get());
  const std::uint64_t seed = KvChainSeed(pool->config().dtype);
  if (std::find(impl_->seeds.begin(), impl_->seeds.end(), seed) ==
      impl_->seeds.end()) {
    impl_->seeds.push_back(seed);
  }
  impl_->attached_mask |= 1ull << card;
  impl_->listeners.push_back(std::move(listener));
}

void PrefixDirectory::OnInsert(std::int32_t card, std::uint64_t chain_hash,
                               std::uint64_t parent_hash,
                               std::span<const std::int32_t> block_tokens) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  Impl::Entry& e = impl_->entries[chain_hash];
  if (e.cards == 0) {
    e.tokens.assign(block_tokens.begin(), block_tokens.end());
    e.parent = parent_hash;
    e.root = std::find(impl_->seeds.begin(), impl_->seeds.end(),
                       parent_hash) != impl_->seeds.end();
  }
  e.cards |= 1ull << card;
}

void PrefixDirectory::OnEvict(std::int32_t card, std::uint64_t chain_hash) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto it = impl_->entries.find(chain_hash);
  if (it == impl_->entries.end()) return;
  it->second.cards &= ~(1ull << card);
  if (it->second.cards == 0) impl_->entries.erase(it);
}

PrefixDirectory::Location PrefixDirectory::Locate(
    std::span<const std::int32_t> tokens, std::int64_t max_tokens,
    std::uint64_t chain_seed, std::uint32_t block_size_tokens,
    std::uint64_t exclude_mask) const {
  Location loc;
  const std::int64_t bs = block_size_tokens;
  if (bs <= 0 || max_tokens <= 0) return loc;
  std::lock_guard<std::mutex> lock(impl_->mu);
  const std::int64_t len = static_cast<std::int64_t>(tokens.size());
  std::uint64_t h = chain_seed;
  std::uint64_t live = impl_->attached_mask & ~exclude_mask;
  std::int64_t full = 0;
  while (live != 0 && (full + 1) * bs <= len && full * bs < max_tokens) {
    const std::uint64_t next = KvChainAdvance(
        h, tokens.subspan(static_cast<std::size_t>(full * bs),
                          static_cast<std::size_t>(bs)));
    auto it = impl_->entries.find(next);
    if (it == impl_->entries.end()) break;
    const std::uint64_t holders = live & it->second.cards;
    if (holders == 0) break;
    live = holders;
    h = next;
    ++full;
    loc.matched_blocks = full;
    loc.card_mask = holders;
  }
  loc.matched_tokens = std::min(full * bs, max_tokens);
  return loc;
}

PrefixDirectorySnapshot PrefixDirectory::Export() const {
  // Resolve each entry's full token prefix by walking parents; entries
  // whose ancestry was evicted everywhere are unreconstructible orphans
  // and are skipped. Only per-card maximal chains (leaves) are emitted:
  // installing a chain re-creates every ancestor block.
  std::lock_guard<std::mutex> lock(impl_->mu);
  std::unordered_map<std::uint64_t, std::vector<std::int32_t>> resolved;
  std::unordered_map<std::uint64_t, bool> resolvable;
  auto resolve = [&](auto&& self, std::uint64_t hash)
      -> const std::vector<std::int32_t>* {
    auto done = resolvable.find(hash);
    if (done != resolvable.end()) {
      return done->second ? &resolved[hash] : nullptr;
    }
    resolvable[hash] = false;  // breaks (impossible) cycles
    auto it = impl_->entries.find(hash);
    if (it == impl_->entries.end()) return nullptr;
    std::vector<std::int32_t> full;
    if (!it->second.root) {
      const std::vector<std::int32_t>* parent =
          self(self, it->second.parent);
      if (parent == nullptr) return nullptr;
      full = *parent;
    }
    full.insert(full.end(), it->second.tokens.begin(),
                it->second.tokens.end());
    resolved[hash] = std::move(full);
    resolvable[hash] = true;
    return &resolved[hash];
  };

  // A hash is a leaf for card c unless some entry held by c names it as
  // parent.
  std::unordered_map<std::uint64_t, std::uint64_t> child_mask;
  for (const auto& [hash, e] : impl_->entries) {
    (void)hash;
    if (!e.root) child_mask[e.parent] |= e.cards;
  }

  PrefixDirectorySnapshot snapshot;
  for (const auto& [hash, e] : impl_->entries) {
    const std::vector<std::int32_t>* full = resolve(resolve, hash);
    if (full == nullptr) continue;
    const auto kids = child_mask.find(hash);
    const std::uint64_t covered =
        kids == child_mask.end() ? 0 : kids->second;
    for (std::int32_t card = 0; card < 64; ++card) {
      const std::uint64_t bit = 1ull << card;
      if ((e.cards & bit) == 0) continue;
      if ((covered & bit) != 0) continue;  // a longer chain covers this
      snapshot.chains.push_back({card, *full});
    }
  }
  std::sort(snapshot.chains.begin(), snapshot.chains.end(),
            [](const PrefixDirectorySnapshot::Chain& a,
               const PrefixDirectorySnapshot::Chain& b) {
              if (a.card != b.card) return a.card < b.card;
              return a.tokens < b.tokens;
            });
  return snapshot;
}

std::int64_t PrefixDirectory::entries() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return static_cast<std::int64_t>(impl_->entries.size());
}

}  // namespace speedllm::serving
