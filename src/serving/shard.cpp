#include "serving/shard.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "accel/executor.hpp"

namespace speedllm::serving {

namespace {

/// The amortized shared cost may never swallow a whole forward: even in a
/// perfectly grouped launch each sequence still owns its KV traffic and
/// compute tail.
constexpr double kSharedShareCap = 0.95;

/// Event skeleton for the telemetry trace; instants pass start == end.
obs::RequestEvent MakeEvent(obs::RequestEventKind kind, std::int64_t stream,
                            std::int64_t tick, double start_seconds,
                            double end_seconds) {
  obs::RequestEvent ev;
  ev.kind = kind;
  ev.stream = stream;
  ev.tick = tick;
  ev.start_seconds = start_seconds;
  ev.end_seconds = end_seconds;
  return ev;
}

}  // namespace

SchedulerConfig NormalizeSchedulerConfig(SchedulerConfig config) {
  config.max_batch_seqs = std::max(1, config.max_batch_seqs);
  config.max_batch_tokens = std::max(1, config.max_batch_tokens);
  config.prefill_chunk_tokens = std::max(1, config.prefill_chunk_tokens);
  config.block_size_tokens = std::max(1u, config.block_size_tokens);
  // A sequence's verify group is 1 + draft_tokens rows; it must fit the
  // per-tick token budget or no sequence could ever be planned.
  config.speculative.draft_tokens =
      std::clamp(config.speculative.draft_tokens, 0,
                 config.max_batch_tokens - 1);
  config.speculative.acceptance_rate =
      std::clamp(config.speculative.acceptance_rate, 0.0, 1.0);
  config.speculative.draft_cost_ratio =
      std::max(0.0, config.speculative.draft_cost_ratio);
  return config;
}

std::uint64_t DeriveKvPoolBytes(const accel::Program& program,
                                const hw::U280Config& u280,
                                std::uint64_t override_bytes) {
  if (override_bytes > 0) {
    return std::min(override_bytes, u280.hbm.capacity_bytes);
  }
  // Resident weights plus a fixed activation/staging reserve come out of
  // the HBM stack; the KV pool gets the rest.
  const std::uint64_t bytes_per_param =
      program.exec.int8_weights ? 2 : 4;  // int8 codes + grouped scales
  const std::uint64_t weight_bytes =
      static_cast<std::uint64_t>(program.model.num_params()) * bytes_per_param;
  const std::uint64_t reserve = weight_bytes + (256ull << 20);
  return u280.hbm.kv_budget_bytes(reserve);
}

double DeriveSharedStepSeconds(const accel::Program& program,
                               const hw::U280Config& u280) {
  const auto& st = program.stats;
  const auto& ex = program.exec;
  const auto& hbm = u280.hbm;
  const std::uint64_t bytes_per_cycle = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(hbm.num_channels) *
             hbm.bytes_per_cycle_per_channel);
  const sim::Cycles weight_cycles = st.weight_stream_bytes / bytes_per_cycle;
  const sim::Cycles launch_cycles =
      st.num_groups *
      (ex.kernel_launch_cycles + ex.dma_setup_cycles + hbm.latency_cycles);
  return u280.cycles_to_seconds(weight_cycles + launch_cycles);
}

Status ValidateRequest(const ServingRequest& req, const std::string& tag,
                       const llama::ModelConfig& model,
                       std::int64_t pool_blocks, std::int64_t block_size) {
  if (req.prompt.empty()) {
    return InvalidArgument(tag + " has an empty prompt");
  }
  if (req.max_new_tokens <= 0) {
    return InvalidArgument(tag + " must generate at least one token (got " +
                           std::to_string(req.max_new_tokens) + ")");
  }
  if (!(req.arrival_seconds >= 0.0) || !std::isfinite(req.arrival_seconds)) {
    return InvalidArgument(tag + " has a non-finite or negative arrival");
  }
  const std::int64_t tokens =
      static_cast<std::int64_t>(req.prompt.size()) + req.max_new_tokens;
  if (tokens > model.seq_len) {
    return OutOfRange(tag + " exceeds seq_len");
  }
  if ((tokens + block_size - 1) / block_size > pool_blocks) {
    return ResourceExhausted(tag + " can never fit the KV pool (" +
                             std::to_string(pool_blocks) + " blocks of " +
                             std::to_string(block_size) + " tokens)");
  }
  return Status::Ok();
}

ShardScheduler::ShardScheduler(const accel::Program& program,
                               const llama::Weights& weights,
                               const hw::U280Config& u280,
                               const SchedulerConfig& config,
                               sim::Engine& engine)
    : program_(program),
      weights_(weights),
      u280_(u280),
      config_(config),
      shared_seconds_(DeriveSharedStepSeconds(program, u280)),
      engine_(engine),
      pool_(MakeKvPoolConfig(
          program.model, config.kv_cache_dtype,
          DeriveKvPoolBytes(program, u280, config.kv_pool_bytes),
          config.block_size_tokens, config.enable_prefix_cache)),
      tick_cost_(shared_seconds_, kSharedShareCap) {
  if (config_.record_ticks) {
    // tick_log compat: with no external telemetry attached the shard
    // records into a private trace so TakeReport can rebuild the log.
    own_trace_ = std::make_unique<obs::RequestTraceRecorder>();
    telemetry_.set_trace(own_trace_.get());
  }
}

ShardScheduler::~ShardScheduler() = default;

void ShardScheduler::set_telemetry(obs::ShardChannel channel) {
  telemetry_ = std::move(channel);
  if (telemetry_.tracing()) {
    own_trace_.reset();  // the external sink supersedes the fallback
  } else if (config_.record_ticks) {
    if (own_trace_ == nullptr) {
      own_trace_ = std::make_unique<obs::RequestTraceRecorder>();
    }
    telemetry_.set_trace(own_trace_.get());
  }
}

void ShardScheduler::Submit(const ServingRequest& request,
                            std::size_t stream_index,
                            const llama::SamplerConfig& sampler_config) {
  if (!error_.ok()) return;
  // Per-request sampler overrides (PR 3 absorb) layer over the engine
  // default before the stream seed is derived: the seed offset is never
  // overridable, so overridden streams stay independent of batch
  // composition and placement exactly like default ones.
  llama::SamplerConfig sc = sampler_config;
  if (request.sampler.has_temperature) {
    sc.temperature = request.sampler.temperature;
  }
  if (request.sampler.has_top_p) sc.top_p = request.sampler.top_p;
  if (request.sampler.has_eos_token) sc.eos_token = request.sampler.eos_token;
  sc.seed = sampler_config.seed + stream_index * 7919;  // independent streams
  Sequence seq{llama::Sampler(sc)};
  seq.request = &request;
  seq.stream_index = stream_index;
  seq.fed = request.prompt;
  seq.outcome.arrival_seconds = request.arrival_seconds;
  seq.outcome.prompt_tokens = static_cast<std::int32_t>(request.prompt.size());
  seq.outcome.tier = request.tier;
  seq.wait_since_tick = tick_index_;
  AddOutstanding(request.tier,
                 static_cast<std::int64_t>(request.prompt.size()) +
                     request.max_new_tokens);
  queued_demand_blocks_ += BlocksForRequest(request);
  ++never_admitted_waiting_;
  seqs_.push_back(std::move(seq));
  waiting_.push_back(seqs_.size() - 1);
  if (!tick_pending_) ScheduleTick(engine_.now());
}

void ShardScheduler::AddOutstanding(RequestTier tier, std::int64_t delta) {
  outstanding_tokens_ += delta;
  tier_outstanding_[static_cast<std::size_t>(TierIndex(tier))] += delta;
}

std::int64_t ShardScheduler::outstanding_tokens_at_or_above(
    RequestTier tier) const {
  std::int64_t sum = 0;
  for (int t = 0; t <= TierIndex(tier); ++t) {
    sum += tier_outstanding_[static_cast<std::size_t>(t)];
  }
  return sum;
}

std::int64_t ShardScheduler::BlocksForRequest(
    const ServingRequest& request) const {
  return pool_.BlocksForTokens(
      static_cast<std::int64_t>(request.prompt.size()) +
      request.max_new_tokens);
}

std::optional<std::pair<const ServingRequest*, std::size_t>>
ShardScheduler::PeekNewestQueued(const StreamPredicate& eligible) const {
  for (auto it = waiting_.rbegin(); it != waiting_.rend(); ++it) {
    const Sequence& seq = seqs_[*it];
    if (seq.ever_admitted) continue;
    if (eligible && !eligible(seq.stream_index)) continue;
    return std::pair{seq.request, seq.stream_index};
  }
  return std::nullopt;
}

std::optional<std::pair<const ServingRequest*, std::size_t>>
ShardScheduler::StealNewestQueued(const StreamPredicate& eligible) {
  for (auto it = waiting_.rbegin(); it != waiting_.rend(); ++it) {
    Sequence& seq = seqs_[*it];
    if (seq.ever_admitted) continue;
    if (eligible && !eligible(seq.stream_index)) continue;
    seq.state = SeqState::kMigrated;
    AddOutstanding(seq.request->tier,
                   -(static_cast<std::int64_t>(seq.request->prompt.size()) +
                     seq.request->max_new_tokens));
    queued_demand_blocks_ -= BlocksForRequest(*seq.request);
    --never_admitted_waiting_;
    waiting_.erase(std::next(it).base());
    return std::pair{seq.request, seq.stream_index};
  }
  return std::nullopt;
}

Status ShardScheduler::Finalize() const {
  if (!error_.ok()) return error_;
  for (const Sequence& seq : seqs_) {
    if (seq.state != SeqState::kDone && seq.state != SeqState::kMigrated &&
        seq.state != SeqState::kCancelled &&
        seq.state != SeqState::kHandedOff) {
      return Internal("scheduler stalled: request " +
                      std::to_string(seq.stream_index) + " never completed");
    }
  }
  return Status::Ok();
}

ServingReport ShardScheduler::TakeReport(
    std::vector<std::size_t>* stream_indices) {
  std::vector<std::size_t> order;
  for (std::size_t i = 0; i < seqs_.size(); ++i) {
    // Migrated and handed-off sequences report from their final shard
    // (the outcome travels with them), never from here.
    if (seqs_[i].state != SeqState::kMigrated &&
        seqs_[i].state != SeqState::kHandedOff) {
      order.push_back(i);
    }
  }
  std::sort(order.begin(), order.end(), [this](std::size_t a, std::size_t b) {
    return seqs_[a].stream_index < seqs_[b].stream_index;
  });
  report_.outcomes.clear();
  report_.outcomes.reserve(order.size());
  if (stream_indices != nullptr) stream_indices->clear();
  for (std::size_t id : order) {
    if (stream_indices != nullptr) {
      stream_indices->push_back(seqs_[id].stream_index);
    }
    report_.outcomes.push_back(std::move(seqs_[id].outcome));
  }
  report_.makespan_seconds = u280_.cycles_to_seconds(last_tick_end_cycles_);
  report_.device_tokens_per_second =
      report_.makespan_seconds > 0.0
          ? static_cast<double>(report_.total_tokens) /
                report_.makespan_seconds
          : 0.0;
  report_.mean_batch_width =
      report_.ticks > 0 ? static_cast<double>(width_sum_) /
                              static_cast<double>(report_.ticks)
                        : 0.0;
  report_.preemptions = pool_.stats().preemption_releases;
  report_.peak_kv_blocks = pool_.stats().peak_used_blocks;
  report_.kv_block_capacity = pool_.num_blocks();
  report_.kv_block_bytes = pool_.config().block_bytes();
  report_.kv_capacity_bytes = pool_.capacity_bytes();
  const KvPoolStats& ps = pool_.stats();
  report_.prefix_cache_queries = ps.prefix_queries;
  report_.prefix_cache_hits = ps.prefix_hits;
  report_.prefix_cache_hit_tokens = ps.prefix_hit_tokens;
  report_.prefix_cache_lookup_tokens = ps.prefix_lookup_tokens;
  report_.cow_copies = ps.cow_copies;
  report_.cache_evictions = ps.cache_evictions;
  report_.dma_bytes_moved = ps.dma_bytes_moved;
  // tick_log compat view: rebuilt from the telemetry event stream (the
  // only tick history path) when record_ticks asked for it.
  if (config_.record_ticks && telemetry_.trace_recorder() != nullptr) {
    report_.tick_log.clear();
    for (const obs::RequestEvent& e : telemetry_.trace_recorder()->events()) {
      if (e.card != telemetry_.card()) continue;
      switch (e.kind) {
        case obs::RequestEventKind::kTick: {
          TickRecord rec;
          rec.start_seconds = e.start_seconds;
          rec.end_seconds = e.end_seconds;
          report_.tick_log.push_back(std::move(rec));
          break;
        }
        case obs::RequestEventKind::kDecodeToken:
          report_.tick_log.back().decode_seqs.push_back(
              static_cast<std::size_t>(e.stream));
          break;
        case obs::RequestEventKind::kPrefillChunk:
          report_.tick_log.back().prefill_seqs.push_back(
              static_cast<std::size_t>(e.stream));
          report_.tick_log.back().prefill_tokens +=
              static_cast<std::int32_t>(e.tokens);
          break;
        default:
          break;
      }
    }
  }
  return std::move(report_);
}

// ---------------------------------------------------------------- events

void ShardScheduler::ScheduleTick(sim::Cycles at) {
  tick_pending_ = true;
  // Lane-tagged so RunParallel may tick shards concurrently; the
  // predicate declines whenever this tick could reach outside the shard
  // (handoff or a live rebalance trigger -- see TickParallelSafe).
  engine_.ScheduleAt(at, lane_, [this] { return TickParallelSafe(); },
                     [this] { RunTick(); });
}

// -------------------------------------------------------------- planning

/// Waiting-queue candidates in admission order for this tick. FCFS and
/// decode-priority only ever look at the head (head-of-line blocking is
/// part of the policy); shortest-prompt-first may skip over requests that
/// do not fit, and ages starved requests back to FCFS. With tiers
/// enabled the policy order is stably re-sorted by tier, so higher tiers
/// admit first and equal-tier requests keep the policy's order exactly
/// (a uniform-tier trace is scheduled identically to tiers-off).
std::vector<std::size_t> ShardScheduler::AdmissionCandidates() const {
  std::vector<std::size_t> order(waiting_.begin(), waiting_.end());
  if (config_.policy == BatchPolicy::kShortestPromptFirst) {
    std::vector<std::size_t> aged, fresh;
    for (std::size_t pos = 0; pos < order.size(); ++pos) {
      const Sequence& s = seqs_[order[pos]];
      if (tick_index_ - s.wait_since_tick >= config_.starvation_grace_ticks) {
        aged.push_back(order[pos]);
      } else {
        fresh.push_back(order[pos]);
      }
    }
    std::stable_sort(fresh.begin(), fresh.end(),
                     [this](std::size_t a, std::size_t b) {
                       return seqs_[a].fed.size() < seqs_[b].fed.size();
                     });
    aged.insert(aged.end(), fresh.begin(), fresh.end());
    order = std::move(aged);
  }
  if (config_.enable_tiers) {
    std::stable_sort(order.begin(), order.end(),
                     [this](std::size_t a, std::size_t b) {
                       return TierIndex(seqs_[a].request->tier) <
                              TierIndex(seqs_[b].request->tier);
                     });
  }
  return order;
}

// ------------------------------------------------------------- execution

/// Accounts one token of KV for `seq`, preempting the most recently
/// admitted resident (swap-by-recompute) until it fits. The requester
/// never preempts an older sequence on its own behalf: when it is itself
/// the newest resident it defers to a later tick instead. Preemption
/// only ever drops the victim's own references: blocks shared with a
/// co-owner stay resident, and the victim's cached blocks stay
/// restorable until the LRU list is actually evicted.
bool ShardScheduler::EnsureKvToken(std::size_t seq_id, std::int32_t token) {
  while (true) {
    Status st = pool_.Append(seq_id, token);
    if (st.ok()) {
      // A copy-on-write may have moved one block.
      const std::int64_t moved = ChargeDma("cow", seq_id);
      if (moved > 0 && telemetry_.tracing()) {
        const double now_s = u280_.cycles_to_seconds(engine_.now());
        obs::RequestEvent ev = MakeEvent(
            obs::RequestEventKind::kCowCopy,
            static_cast<std::int64_t>(seqs_[seq_id].stream_index),
            tick_index_, now_s, now_s);
        ev.bytes = moved;
        telemetry_.Record(std::move(ev));
      }
      return true;
    }
    if (st.code() != StatusCode::kResourceExhausted) {
      error_ = st;
      return false;
    }
    kv_blocked_ = true;
    if (!config_.allow_preemption) return false;
    // Victim selection: with tiers enabled the lowest-priority resident
    // loses first (numerically-highest tier), newest admission breaking
    // ties within a tier; and a requester never evicts a strictly
    // higher-priority resident on its own behalf -- it defers instead.
    // With tiers off every resident ranks equal and this reduces to
    // "newest admission order" exactly as before.
    std::size_t victim = seqs_.size();
    int victim_tier = -1;
    std::int64_t newest = -1;
    for (std::size_t r : residents_) {
      const int tier =
          config_.enable_tiers ? TierIndex(seqs_[r].request->tier) : 0;
      if (tier > victim_tier ||
          (tier == victim_tier && seqs_[r].admission_order > newest)) {
        victim_tier = tier;
        newest = seqs_[r].admission_order;
        victim = r;
      }
    }
    if (victim == seqs_.size() || victim == seq_id) return false;
    const int my_tier =
        config_.enable_tiers ? TierIndex(seqs_[seq_id].request->tier) : 0;
    if (victim_tier < my_tier) return false;  // never evict a higher tier
    Preempt(victim);
  }
}

void ShardScheduler::Preempt(std::size_t victim) {
  Sequence& seq = seqs_[victim];
  if (telemetry_.tracing()) {
    const double now_s = u280_.cycles_to_seconds(engine_.now());
    obs::RequestEvent ev = MakeEvent(
        obs::RequestEventKind::kPreempt,
        static_cast<std::int64_t>(seq.stream_index), tick_index_, now_s,
        now_s);
    ev.tokens = seq.cursor;  // fed work dropped, owed again as recompute
    telemetry_.Record(std::move(ev));
  }
  Status st = pool_.Release(victim, /*preempted=*/true);
  assert(st.ok());
  (void)st;
  ChargeDma("swap-out", victim);  // the victim's private blocks write back
  ReleaseSlot(seq);
  residents_.erase(std::find(residents_.begin(), residents_.end(), victim));
  seq.state = SeqState::kWaiting;
  // Fed work is owed again (recompute).
  AddOutstanding(seq.request->tier, seq.cursor);
  seq.cursor = 0;  // KV gone: recompute from scratch on readmission
  seq.wait_since_tick = tick_index_;
  // Preempted sequences re-queue at the front: they are the oldest work
  // and must not starve behind fresh arrivals.
  waiting_.push_front(victim);
  ++seq.outcome.preemptions;
}

std::int64_t ShardScheduler::RestoreCachedPrefix(std::size_t seq_id) {
  Sequence& seq = seqs_[seq_id];
  // The final fed token must still be processed for fresh logits, unless
  // a retained pending token (readmission after preemption) makes the
  // whole prefill a pure recompute -- then a full restore is legal.
  const std::int64_t cap = static_cast<std::int64_t>(seq.fed.size()) -
                           (seq.pending_token >= 0 ? 0 : 1);
  auto match_or = pool_.AcquireCachedPrefix(seq_id, seq.fed, cap);
  if (!match_or.ok()) {
    error_ = match_or.status();
    return -1;
  }
  const std::int64_t restored = match_or->matched_tokens;
  ChargeDma("restore", seq_id);  // the restore reads blocks through HBM
  if (restored == 0) return 0;
  if (telemetry_.tracing()) {
    const double now_s = u280_.cycles_to_seconds(engine_.now());
    obs::RequestEvent ev = MakeEvent(
        obs::RequestEventKind::kCacheHit,
        static_cast<std::int64_t>(seq.stream_index), tick_index_, now_s,
        now_s);
    ev.tokens = restored;
    telemetry_.Record(std::move(ev));
  }
  // Rebuild the slot executor's functional KV for the cached prefix. On
  // the device those entries are already resident in HBM, so no forward
  // compute or weight traffic is owed for them -- only the restore DMA
  // charged above.
  accel::Executor& exec = *slots_[static_cast<std::size_t>(seq.slot)];
  for (std::int64_t p = 0; p < restored; ++p) {
    auto logits = exec.Forward(seq.fed[static_cast<std::size_t>(p)],
                               static_cast<std::int32_t>(p));
    if (!logits.ok()) {
      error_ = logits.status();
      return -1;
    }
  }
  seq.cursor = static_cast<std::int32_t>(restored);
  seq.high_water = std::max(seq.high_water, seq.cursor);
  AddOutstanding(seq.request->tier, -restored);
  return restored;
}

void ShardScheduler::ExtractHandoff(std::size_t seq_id, sim::Cycles ready) {
  Sequence& seq = seqs_[seq_id];
  KvHandoff handoff;
  handoff.request = seq.request;
  handoff.stream_index = seq.stream_index;
  handoff.sampler = std::move(seq.sampler);
  handoff.pending_token = seq.pending_token;
  // Whole blocks ship, at this pool's dtype-aware block_bytes (an int8
  // pool hands off roughly half the bytes an fp16 one does).
  handoff.kv_bytes =
      pool_.BlocksForTokens(static_cast<std::int64_t>(seq.fed.size())) *
      static_cast<std::int64_t>(pool_.config().block_bytes());
  ++seq.outcome.handoffs;
  handoff.outcome = std::move(seq.outcome);
  handoff.fed = std::move(seq.fed);
  // Release local references; sealed full blocks stay in this card's
  // prefix cache (the directory keeps advertising them), and the
  // interconnect's source-read leg pays for extracting the pages.
  Status st = pool_.Release(seq_id);
  assert(st.ok());
  (void)st;
  ReleaseSlot(seq);
  residents_.erase(std::find(residents_.begin(), residents_.end(), seq_id));
  seq.state = SeqState::kHandedOff;
  seq.pending_token = -1;
  // The decode budget is owed by the destination now.
  AddOutstanding(
      handoff.request->tier,
      -(handoff.request->max_new_tokens -
        static_cast<std::int64_t>(handoff.outcome.generated.size())));
  handoff_hook_(std::move(handoff), ready);
}

void ShardScheduler::AdoptHandoff(KvHandoff handoff) {
  if (!error_.ok()) return;
  Sequence seq{std::move(handoff.sampler)};
  seq.request = handoff.request;
  seq.stream_index = handoff.stream_index;
  seq.fed = std::move(handoff.fed);
  seq.pending_token = handoff.pending_token;
  seq.outcome = std::move(handoff.outcome);
  seq.wait_since_tick = tick_index_;
  // Admitted on the prefill shard: TTFT is stamped, the rebalancer must
  // not steal it, and its first local admission replays shipped KV
  // instead of prefilling.
  seq.ever_admitted = true;
  seq.adopt_pending = true;
  // Every fed token was processed at least once (on the prefill shard):
  // if a later preemption forces recompute here, those tokens count as
  // recomputed work, never as fresh throughput.
  seq.high_water = static_cast<std::int32_t>(seq.fed.size());
  // The replay subtracts per token exactly like a restore/prefill would,
  // so fed tokens enter the backlog alongside the decode budget.
  AddOutstanding(seq.request->tier,
                 static_cast<std::int64_t>(seq.fed.size()) +
                     seq.request->max_new_tokens -
                     static_cast<std::int64_t>(seq.outcome.generated.size()));
  queued_demand_blocks_ += BlocksForRequest(*seq.request);
  seqs_.push_back(std::move(seq));
  waiting_.push_back(seqs_.size() - 1);
  if (!tick_pending_) ScheduleTick(engine_.now());
}

bool ShardScheduler::ReplayAdoptedKv(std::size_t seq_id) {
  // Blocks this card already caches (a shared prefix) map as shared --
  // the same restore path a local cache hit takes -- and the rest append
  // fresh. All forward replay is zero simulated compute: the shipped
  // pages are already in HBM, paid for by the interconnect transfer.
  if (RestoreCachedPrefix(seq_id) < 0) return false;
  Sequence& seq = seqs_[seq_id];
  accel::Executor& exec = *slots_[static_cast<std::size_t>(seq.slot)];
  while (seq.cursor < static_cast<std::int32_t>(seq.fed.size())) {
    const std::int32_t token = seq.fed[static_cast<std::size_t>(seq.cursor)];
    if (!EnsureKvToken(seq_id, token)) return false;
    auto logits = exec.Forward(token, seq.cursor);
    if (!logits.ok()) {
      error_ = logits.status();
      return false;
    }
    ++seq.cursor;
    AddOutstanding(seq.request->tier, -1);
  }
  return true;
}

int ShardScheduler::AcquireSlot() {
  if (!free_slots_.empty()) {
    int slot = free_slots_.back();
    free_slots_.pop_back();
    slots_[static_cast<std::size_t>(slot)]->ResetSequence();
    return slot;
  }
  slots_.push_back(
      std::make_unique<accel::Executor>(program_, weights_, u280_));
  return static_cast<int>(slots_.size() - 1);
}

void ShardScheduler::ReleaseSlot(Sequence& seq) {
  assert(seq.slot >= 0);
  free_slots_.push_back(seq.slot);
  seq.slot = -1;
}

/// Runs one forward through the sequence's slot executor and folds its
/// simulated cost into the tick. Returns false on a hard error.
bool ShardScheduler::ForwardToken(Sequence& seq, std::int32_t token,
                                  std::int32_t pos,
                                  std::span<const float>* logits) {
  accel::Executor& exec = *slots_[static_cast<std::size_t>(seq.slot)];
  auto logits_or = exec.Forward(token, pos);
  if (!logits_or.ok()) {
    error_ = logits_or.status();
    return false;
  }
  const double f = exec.last_stats().seconds;
  last_forward_seconds_ = f;
  tick_cost_.AddProblem(f);
  if (logits != nullptr) *logits = *logits_or;
  return true;
}

namespace {

/// splitmix64-style avalanche; the acceptance model's mixing primitive.
std::uint64_t SpecMix(std::uint64_t h) {
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdull;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ull;
  h ^= h >> 33;
  return h;
}

/// Deterministic acceptance: hash (seed, stream, absolute position of
/// the drafted token) to a uniform in [0, 1) and compare against the
/// configured rate. Depends on nothing the cluster layout can change,
/// so the accepted-token schedule -- hence every tick boundary the spec
/// path produces -- is invariant across card count, placement, caching,
/// dtype, roles, and parallel ticking.
bool AcceptDraft(const SpeculativeConfig& spec, std::size_t stream,
                 std::int64_t position) {
  if (spec.acceptance_rate >= 1.0) return true;
  if (spec.acceptance_rate <= 0.0) return false;
  std::uint64_t h = SpecMix(spec.acceptance_seed ^
                            SpecMix(static_cast<std::uint64_t>(stream) +
                                    0x9e3779b97f4a7c15ull));
  h = SpecMix(h ^ (static_cast<std::uint64_t>(position) + 1));
  const double u =
      static_cast<double>(h >> 11) / 9007199254740992.0;  // [0, 1)
  return u < spec.acceptance_rate;
}

}  // namespace

std::int32_t ShardScheduler::DraftAndAccept(std::size_t seq_id,
                                            std::int32_t* drafted) {
  *drafted = 0;
  Sequence& seq = seqs_[seq_id];
  const SpeculativeConfig& spec = config_.speculative;
  // Drafting past the request's remaining budget is pure waste: the
  // verify could never commit those rows.
  const std::int64_t remaining =
      seq.request->max_new_tokens -
      static_cast<std::int64_t>(seq.outcome.generated.size());
  const std::int32_t k = static_cast<std::int32_t>(std::min<std::int64_t>(
      spec.draft_tokens, std::max<std::int64_t>(0, remaining - 1)));
  if (k <= 0) return 0;
  // The pending token's KV is already appended (EnsureKvToken ran), so
  // drafts land at positions fed.size()+1 ... fed.size()+k. Their pool
  // appends happen under a speculation phase: sealing into the prefix
  // cache is suppressed and the rollback below restores the sequence
  // byte-identically, so draft content never leaks refcounts or cache
  // entries. A dry pool just cuts the draft short -- drafts never
  // preempt anyone.
  Status st = pool_.BeginSpeculation(seq_id);
  assert(st.ok());
  if (!st.ok()) {
    error_ = st;
    return 0;
  }
  const std::int64_t base_pos = static_cast<std::int64_t>(seq.fed.size()) + 1;
  for (std::int32_t j = 0; j < k; ++j) {
    // The draft model's guess: an arbitrary deterministic pseudo-token.
    // Its value only passes through rolled-back pool accounting -- the
    // verify commits the target model's own samples, never this.
    const std::int32_t guess = static_cast<std::int32_t>(
        SpecMix(spec.acceptance_seed ^
                static_cast<std::uint64_t>(base_pos + j) * 0x100000001b3ull) %
        static_cast<std::uint64_t>(program_.model.vocab_size));
    Status ap = pool_.Append(seq_id, guess);
    if (!ap.ok()) {
      if (ap.code() == StatusCode::kResourceExhausted) break;
      error_ = ap;
      break;
    }
    ++*drafted;
  }
  ChargeDma("spec-draft", seq_id);
  st = pool_.RollbackSpeculation(seq_id);
  assert(st.ok());
  if (!st.ok()) error_ = st;
  if (!error_.ok()) return 0;
  report_.spec_draft_tokens += *drafted;
  if (telemetry_.tracing() && *drafted > 0) {
    const double now_s = u280_.cycles_to_seconds(engine_.now());
    obs::RequestEvent ev = MakeEvent(
        obs::RequestEventKind::kDraftPropose,
        static_cast<std::int64_t>(seq.stream_index), tick_index_, now_s,
        now_s);
    ev.tokens = *drafted;
    telemetry_.Record(std::move(ev));
  }
  std::int32_t accepted = 0;
  for (std::int32_t j = 0; j < *drafted; ++j) {
    if (!AcceptDraft(spec, seq.stream_index, base_pos + j)) break;
    ++accepted;
  }
  return accepted;
}

Interconnect& ShardScheduler::interconnect() {
  if (interconnect_ != nullptr) return *interconnect_;
  if (own_interconnect_ == nullptr) {
    hw::MultiCardConfig one;
    one.cards.push_back(u280_);
    own_interconnect_ = std::make_unique<Interconnect>(one);
    card_id_ = 0;
  }
  return *own_interconnect_;
}

std::int64_t ShardScheduler::ChargeDma(const char* cause,
                                       std::size_t seq_id) {
  const std::int64_t moved = pool_.stats().dma_bytes_moved - dma_bytes_seen_;
  dma_bytes_seen_ = pool_.stats().dma_bytes_moved;
  if (moved <= 0) return 0;
  double seconds = 0.0;
  double base_s = u280_.cycles_to_seconds(engine_.now());
  if (config_.charge_dma_cost) {
    // The move queues on this card's shared HBM DMA stations, so it
    // serializes honestly behind concurrent traffic (earlier moves this
    // tick, cross-card KV transfers) instead of being charged
    // additively. The tick is billed only the window past what it
    // already paid (`dma_charged_until_`), which makes back-to-back
    // uncontended moves cost exactly the old per-move sum.
    const sim::Cycles base = std::max(engine_.now(), dma_charged_until_);
    const hw::TransferTiming window = interconnect().LocalDma(
        engine_.now(), static_cast<std::uint64_t>(moved), card_id_);
    dma_charged_until_ = window.end;
    seconds = u280_.cycles_to_seconds(window.end - base);
    base_s = u280_.cycles_to_seconds(base);
    tick_cost_.AddSerialSeconds(seconds);
    report_.dma_time_seconds += seconds;
  }
  if (telemetry_.tracing()) {
    obs::RequestEvent ev = MakeEvent(
        obs::RequestEventKind::kDmaTransfer,
        static_cast<std::int64_t>(seqs_[seq_id].stream_index), tick_index_,
        base_s, base_s + seconds);
    ev.bytes = moved;
    ev.detail = cause;
    telemetry_.Record(std::move(ev));
  }
  return moved;
}

/// The amplitude sits far below typical logit gaps, so greedy argmax is
/// unchanged in practice (tests lock this in); temperature sampling may
/// legally diverge from fp16, exactly like a real quantized cache.
void ShardScheduler::PerturbLogitsForQuant(const Sequence& seq,
                                           std::span<float> logits) const {
  constexpr float kAmplitude = 1e-6f;
  const std::uint64_t block_index =
      seq.fed.size() / config_.block_size_tokens;
  std::uint64_t h = (static_cast<std::uint64_t>(seq.stream_index) + 1) *
                    0x9e3779b97f4a7c15ull;
  h ^= (block_index + 1) * 0x100000001b3ull;
  for (float& v : logits) {
    h ^= h >> 12;  // xorshift64* per element
    h ^= h << 25;
    h ^= h >> 27;
    const std::uint64_t r = h * 0x2545f4914f6cdd1dull;
    // Top 53 bits over 2^52, recentered: uniform in [-1, 1).
    const float noise =
        static_cast<float>(static_cast<double>(r >> 11) /
                           4503599627370496.0) -
        1.0f;
    v += kAmplitude * noise;
  }
}

void ShardScheduler::SampleNext(Sequence& seq, std::span<const float> logits) {
  sample_scratch_.assign(logits.begin(), logits.end());
  if (config_.kv_cache_dtype == KvCacheDtype::kInt8) {
    PerturbLogitsForQuant(seq, sample_scratch_);
  }
  seq.pending_token = seq.sampler.Sample(sample_scratch_);
}

/// True when the freshly sampled pending token must end generation early:
/// the request's stop set or the sampler-wide EOS id hit.
bool ShardScheduler::ShouldStop(const Sequence& seq) const {
  return IsStopToken(*seq.request, seq.sampler.config().eos_token,
                     seq.pending_token);
}

void ShardScheduler::FinishSequence(std::size_t seq_id, FinishReason reason) {
  Sequence& seq = seqs_[seq_id];
  seq.state = SeqState::kDone;
  seq.pending_token = -1;
  seq.outcome.finish_reason = reason;
  if (reason == FinishReason::kStop) {
    // The unused decode budget is owed to no one anymore.
    const std::int64_t saved =
        seq.request->max_new_tokens -
        static_cast<std::int64_t>(seq.outcome.generated.size());
    AddOutstanding(seq.request->tier, -saved);
    report_.stop_saved_tokens += saved;
    ++report_.stopped_requests;
  }
  Status st = pool_.Release(seq_id);
  assert(st.ok());
  (void)st;
  ReleaseSlot(seq);
  residents_.erase(std::find(residents_.begin(), residents_.end(), seq_id));
  tick_emissions_.push_back(Emission{seq_id, -1, reason});
}

Status ShardScheduler::Abort(std::size_t stream_index) {
  std::size_t seq_id = seqs_.size();
  for (std::size_t i = 0; i < seqs_.size(); ++i) {
    if (seqs_[i].stream_index == stream_index &&
        seqs_[i].state != SeqState::kMigrated &&
        seqs_[i].state != SeqState::kHandedOff) {
      seq_id = i;
      break;
    }
  }
  if (seq_id == seqs_.size()) {
    return NotFound("stream " + std::to_string(stream_index) +
                    " is not live on this shard");
  }
  Sequence& seq = seqs_[seq_id];
  if (seq.state == SeqState::kCancelled) {
    return FailedPrecondition("stream " + std::to_string(stream_index) +
                              " already finished");
  }
  if (seq.state == SeqState::kDone) {
    // Finished internally -- but if the finish emission has not been
    // delivered yet, the client has observed nothing final and the
    // cancel wins the race: go quiet as cancelled instead. Capacity was
    // already released by FinishSequence; only the bookkeeping reverts.
    const auto is_finish = [seq_id](const Emission& e) {
      return e.seq_id == seq_id && e.token < 0;
    };
    if (std::find_if(pending_emissions_.begin(), pending_emissions_.end(),
                     is_finish) == pending_emissions_.end()) {
      return FailedPrecondition("stream " + std::to_string(stream_index) +
                                " already finished");
    }
    if (seq.outcome.finish_reason == FinishReason::kStop) {
      report_.stop_saved_tokens -=
          seq.request->max_new_tokens -
          static_cast<std::int64_t>(seq.outcome.generated.size());
      --report_.stopped_requests;
    }
  } else {
    // Tokens still owed (remaining prefill/recompute plus unused decode
    // budget) leave the backlog; capacity frees immediately.
    AddOutstanding(
        seq.request->tier,
        -(seq.remaining_prefill() +
          (seq.request->max_new_tokens -
           static_cast<std::int64_t>(seq.outcome.generated.size()))));
    if (seq.state == SeqState::kWaiting) {
      waiting_.erase(std::find(waiting_.begin(), waiting_.end(), seq_id));
      if (!seq.ever_admitted) {
        queued_demand_blocks_ -= BlocksForRequest(*seq.request);
        --never_admitted_waiting_;
      }
    } else {
      Status st = pool_.Release(seq_id);
      assert(st.ok());
      (void)st;
      ReleaseSlot(seq);
      residents_.erase(
          std::find(residents_.begin(), residents_.end(), seq_id));
    }
  }

  // A cancelled stream must never emit again: drop everything committed
  // but not yet delivered, from both the outcome and the event queue.
  const auto scrub = [seq_id](const Emission& e) { return e.seq_id == seq_id; };
  tick_emissions_.erase(
      std::remove_if(tick_emissions_.begin(), tick_emissions_.end(), scrub),
      tick_emissions_.end());
  pending_emissions_.erase(std::remove_if(pending_emissions_.begin(),
                                          pending_emissions_.end(), scrub),
                           pending_emissions_.end());
  seq.outcome.generated.resize(static_cast<std::size_t>(seq.delivered));

  const double now_s = u280_.cycles_to_seconds(engine_.now());
  seq.state = SeqState::kCancelled;
  seq.pending_token = -1;
  seq.outcome.finish_reason = FinishReason::kCancelled;
  seq.outcome.completion_seconds = now_s;
  if (seq.outcome.first_token_seconds == 0.0) {
    seq.outcome.first_token_seconds = now_s;
  }
  if (!seq.ever_admitted) seq.outcome.admission_seconds = now_s;
  ++report_.cancelled_requests;
  if (telemetry_.tracing()) {
    obs::RequestEvent ev = MakeEvent(
        obs::RequestEventKind::kCancel,
        static_cast<std::int64_t>(stream_index), tick_index_, now_s, now_s);
    ev.tokens = seq.delivered;
    telemetry_.Record(std::move(ev));
  }
  if (on_finish_) {
    // Copy: the hook may reentrantly Submit and grow seqs_.
    const RequestOutcome outcome = seq.outcome;
    on_finish_(stream_index, FinishReason::kCancelled, outcome, now_s);
  }
  return Status::Ok();
}

void ShardScheduler::DeliverEmissions() {
  // Pop one entry at a time: a hook may Abort another stream (scrubbing
  // its not-yet-delivered entries out from under us) or Submit (growing
  // seqs_, so no Sequence reference may be held across a hook call).
  const double t = u280_.cycles_to_seconds(engine_.now());
  while (!pending_emissions_.empty()) {
    const Emission e = pending_emissions_.front();
    pending_emissions_.pop_front();
    const std::size_t stream = seqs_[e.seq_id].stream_index;
    if (e.token >= 0) {
      ++seqs_[e.seq_id].delivered;
      if (on_token_) on_token_(stream, e.token, t);
    } else {
      // The finish's delivery time is the request's observable end;
      // telemetry records the terminal event and the latency samples
      // here so exactly one terminal event exists per stream (a cancel
      // that won the race scrubbed this emission and recorded kCancel).
      const RequestOutcome& oc = seqs_[e.seq_id].outcome;
      if (telemetry_.tracing()) {
        obs::RequestEvent ev =
            MakeEvent(obs::RequestEventKind::kFinish,
                      static_cast<std::int64_t>(stream), tick_index_, t, t);
        ev.tokens = static_cast<std::int64_t>(oc.generated.size());
        ev.detail = FinishReasonName(e.finish);
        telemetry_.Record(std::move(ev));
      }
      if (telemetry_.metrics()) {
        const std::int64_t n =
            static_cast<std::int64_t>(oc.generated.size());
        const double decode_span =
            oc.completion_seconds - oc.first_token_seconds;
        telemetry_.ObserveFinish(
            oc.time_to_first_token(),
            n > 1 ? decode_span / static_cast<double>(n - 1) : 0.0, n > 0);
      }
      if (on_finish_) {
        const RequestOutcome outcome = seqs_[e.seq_id].outcome;
        on_finish_(stream, e.finish, outcome, t);
      }
    }
  }
}

void ShardScheduler::RunTick() {
  tick_pending_ = false;
  if (!error_.ok()) return;
  ++tick_index_;
  kv_blocked_ = false;
  const double start_s = u280_.cycles_to_seconds(engine_.now());
  tick_cost_.BeginGroup();

  // ---- plan: decode set first, in admission order (rotating only when
  // the token budget cannot cover every decoding sequence). With tiers
  // enabled a scarce budget funds tiers in priority order: every fully
  // funded tier decodes whole, and the rotation fairness applies only
  // within the first tier the budget cannot cover. A uniform-tier batch
  // is one group, so the plan is identical to tiers-off.
  //
  // With speculation on, a decode sequence's verify group is 1 + k rows
  // (the pending token plus k drafts), so each planned sequence draws
  // `spec_width` budget units; spec off is width 1, reproducing the
  // historical plan exactly.
  const bool spec_on =
      config_.speculative.enable && config_.speculative.draft_tokens > 0;
  const std::int32_t spec_width =
      spec_on ? 1 + config_.speculative.draft_tokens : 1;
  std::int32_t budget = config_.max_batch_tokens;
  std::vector<std::size_t> decode_plan;
  {
    std::vector<std::size_t> decoding;
    for (std::size_t r : residents_) {
      if (seqs_[r].state == SeqState::kDecode) decoding.push_back(r);
    }
    if (config_.enable_tiers &&
        static_cast<std::int64_t>(decoding.size()) * spec_width > budget) {
      std::stable_sort(decoding.begin(), decoding.end(),
                       [this](std::size_t a, std::size_t b) {
                         return TierIndex(seqs_[a].request->tier) <
                                TierIndex(seqs_[b].request->tier);
                       });
      std::size_t tier_begin = 0;
      while (tier_begin < decoding.size() && budget > 0) {
        std::size_t tier_end = tier_begin + 1;
        while (tier_end < decoding.size() &&
               seqs_[decoding[tier_end]].request->tier ==
                   seqs_[decoding[tier_begin]].request->tier) {
          ++tier_end;
        }
        const std::size_t n = tier_end - tier_begin;
        if (static_cast<std::int64_t>(n) * spec_width <= budget) {
          for (std::size_t k = tier_begin; k < tier_end; ++k) {
            decode_plan.push_back(decoding[k]);
          }
          budget -= static_cast<std::int32_t>(n) * spec_width;
        } else {
          const std::size_t slots = static_cast<std::size_t>(budget / spec_width);
          const std::size_t start = rr_offset_ % n;
          for (std::size_t k = 0; k < slots; ++k) {
            decode_plan.push_back(decoding[tier_begin + (start + k) % n]);
          }
          rr_offset_ += slots;
          budget -= static_cast<std::int32_t>(slots) * spec_width;
          break;
        }
        tier_begin = tier_end;
      }
    } else if (static_cast<std::int64_t>(decoding.size()) * spec_width <=
               budget) {
      decode_plan = decoding;
      budget -= static_cast<std::int32_t>(decode_plan.size()) * spec_width;
    } else {
      const std::size_t n = decoding.size();
      const std::size_t slots = static_cast<std::size_t>(budget / spec_width);
      const std::size_t start = rr_offset_ % n;
      for (std::size_t k = 0; k < slots; ++k) {
        decode_plan.push_back(decoding[(start + k) % n]);
      }
      rr_offset_ += slots;
      budget -= static_cast<std::int32_t>(slots) * spec_width;
    }
  }

  // ---- plan: prefill chunks -- resident partial prefills continue
  // first, then new admissions per policy.
  std::int32_t prefill_budget =
      config_.policy == BatchPolicy::kDecodePriority
          ? std::min(budget, config_.prefill_chunk_tokens)
          : budget;
  std::vector<std::pair<std::size_t, std::int32_t>> prefill_plan;
  for (std::size_t r : residents_) {
    if (prefill_budget <= 0) break;
    Sequence& seq = seqs_[r];
    if (seq.state != SeqState::kPrefill) continue;
    const std::int32_t chunk =
        std::min(seq.remaining_prefill(), prefill_budget);
    if (chunk > 0) {
      prefill_plan.emplace_back(r, chunk);
      prefill_budget -= chunk;
    }
  }
  std::int64_t restored_this_tick = 0;
  if (prefill_budget > 0) {
    // Admissions within one tick reserve against each other: a block the
    // first admission will consume is not offered to the second.
    std::int64_t planned_blocks = 0;
    for (std::size_t cand : AdmissionCandidates()) {
      if (prefill_budget <= 0) break;
      if (static_cast<std::int32_t>(residents_.size()) >=
          config_.max_batch_seqs) {
        break;
      }
      Sequence& seq = seqs_[cand];
      const std::int64_t need = static_cast<std::int64_t>(seq.fed.size()) + 1;
      // Cached blocks already held by a live resident cost no free
      // capacity to map, so prefix-heavy workloads admit more residents
      // than the raw block count suggests (the residency win). A match
      // that ends mid-block is the exception: the write into that
      // shared tail must copy it, so one block stays reserved for the
      // copy-on-write.
      const std::int64_t cache_cap =
          static_cast<std::int64_t>(seq.fed.size()) -
          (seq.pending_token >= 0 ? 0 : 1);
      const PrefixMatch match = pool_.MatchCachedPrefix(seq.fed, cache_cap);
      std::int64_t discount = match.live_shared_blocks;
      if (discount > 0 &&
          match.matched_tokens %
                  static_cast<std::int64_t>(config_.block_size_tokens) !=
              0) {
        --discount;
      }
      const std::int64_t need_blocks = pool_.BlocksForTokens(need) - discount;
      if (need_blocks + planned_blocks > pool_.free_blocks()) {
        kv_blocked_ = true;
        // Head-of-line blocking for FCFS-family policies; SPF (which
        // reorders anyway) may skip past an oversized head.
        if (config_.policy != BatchPolicy::kShortestPromptFirst) break;
        continue;
      }
      planned_blocks += need_blocks;
      Status st = pool_.Register(cand);
      assert(st.ok());
      (void)st;
      waiting_.erase(std::find(waiting_.begin(), waiting_.end(), cand));
      seq.slot = AcquireSlot();
      seq.state = SeqState::kPrefill;
      seq.admission_order = next_admission_++;
      residents_.push_back(cand);
      if (!seq.ever_admitted) {
        seq.ever_admitted = true;
        seq.outcome.admission_seconds = start_s;
        // No longer queued demand: its blocks now come out of the pool.
        queued_demand_blocks_ -= BlocksForRequest(*seq.request);
        --never_admitted_waiting_;
        if (telemetry_.tracing()) {
          telemetry_.Record(MakeEvent(
              obs::RequestEventKind::kQueueWait,
              static_cast<std::int64_t>(seq.stream_index), tick_index_,
              seq.outcome.arrival_seconds, start_s));
        }
      }
      if (seq.adopt_pending) {
        // First local admission of an adopted handoff: map the shipped
        // KV at zero forward cost and join the decode set next tick.
        seq.adopt_pending = false;
        queued_demand_blocks_ -= BlocksForRequest(*seq.request);
        const bool replayed = ReplayAdoptedKv(cand);
        if (!error_.ok()) return;
        restored_this_tick += seq.cursor;
        if (!replayed) continue;  // pool dry mid-replay: the tail
                                  // recomputes as ordinary prefill later
        seq.state = SeqState::kDecode;
        continue;
      }
      const std::int64_t restored = RestoreCachedPrefix(cand);
      if (restored < 0) return;
      restored_this_tick += restored;
      if (seq.remaining_prefill() == 0) {
        // Full cache restore (a readmission whose every fed token was
        // still cached): nothing left to prefill, so it joins the decode
        // set next tick and consumes no prefill budget now.
        seq.state = SeqState::kDecode;
        continue;
      }
      const std::int32_t chunk =
          std::min(seq.remaining_prefill(), prefill_budget);
      prefill_plan.emplace_back(cand, chunk);
      prefill_budget -= chunk;
    }
  }

  // ---- execute. Commit timestamps are applied once the tick length is
  // known; completions release capacity immediately so later chunks in
  // the same tick may use it.
  std::vector<std::size_t> decode_committed;
  std::vector<std::size_t> ttft_marks;
  std::vector<std::size_t> decode_executed;
  std::vector<std::pair<std::size_t, std::int32_t>> prefill_executed;
  std::vector<std::size_t> handoff_ready;

  const std::int64_t spec_draft_at_open = report_.spec_draft_tokens;
  const std::int64_t spec_accept_at_open = report_.spec_accepted_tokens;
  for (std::size_t seq_id : decode_plan) {
    Sequence& seq = seqs_[seq_id];
    if (seq.state != SeqState::kDecode) continue;  // preempted mid-tick
    if (!EnsureKvToken(seq_id, seq.pending_token)) {
      if (!error_.ok()) return;
      continue;  // deferred to a later tick
    }
    // Draft phase: propose k tokens, roll their KV back, and let the
    // deterministic acceptance model decide how long a run this tick's
    // verify group commits. Committed tokens are always the target
    // model's own sampled tokens -- speculation collapses latency, never
    // changes stream content -- so spec on/off streams are identical.
    std::int32_t drafted = 0;
    const std::int32_t accepted =
        spec_on ? DraftAndAccept(seq_id, &drafted) : 0;
    if (!error_.ok()) return;
    const std::int32_t planned_commits = 1 + accepted;
    std::int32_t commits = 0;
    for (std::int32_t step = 0; step < planned_commits; ++step) {
      if (step > 0 && !EnsureKvToken(seq_id, seq.pending_token)) {
        if (!error_.ok()) return;
        break;  // pool dry mid-verify: the rest commits on a later tick
      }
      const std::int32_t pos = static_cast<std::int32_t>(seq.fed.size());
      std::span<const float> logits;
      if (!ForwardToken(seq, seq.pending_token, pos, &logits)) return;
      seq.fed.push_back(seq.pending_token);
      seq.cursor = static_cast<std::int32_t>(seq.fed.size());
      seq.high_water = std::max(seq.high_water, seq.cursor);
      seq.outcome.generated.push_back(seq.pending_token);
      tick_emissions_.push_back(
          Emission{seq_id, seq.pending_token, FinishReason::kNone});
      AddOutstanding(seq.request->tier, -1);  // one less decode token owed
      ++report_.total_tokens;
      decode_executed.push_back(seq_id);
      ++commits;
      if (step > 0) ++report_.spec_accepted_tokens;
      if (!seq.budget_left()) {
        FinishSequence(seq_id, FinishReason::kLength);
        break;
      }
      SampleNext(seq, logits);
      if (ShouldStop(seq)) {
        FinishSequence(seq_id, FinishReason::kStop);
        break;
      }
    }
    if (commits > 0) decode_committed.push_back(seq_id);
    if (drafted > 0) {
      // The verify group launched 1 + drafted rows; rows past the
      // committed run are wasted work the packed launch still priced
      // (each at the last committed row's cost), and the draft model's
      // own k rows ride along at the configured cost ratio.
      const std::int32_t wasted = 1 + drafted - commits;
      for (std::int32_t w = 0; w < wasted; ++w) {
        tick_cost_.AddProblem(last_forward_seconds_);
      }
      tick_cost_.AddDraftRows(drafted, last_forward_seconds_,
                              config_.speculative.draft_cost_ratio);
      report_.spec_wasted_tokens += wasted;
      if (telemetry_.tracing()) {
        obs::RequestEvent ev = MakeEvent(
            obs::RequestEventKind::kVerifyAccept,
            static_cast<std::int64_t>(seq.stream_index), tick_index_,
            start_s, start_s);
        ev.tokens = commits - 1;  // accepted drafts actually committed
        telemetry_.Record(std::move(ev));
      }
    }
  }

  for (auto [seq_id, chunk] : prefill_plan) {
    Sequence& seq = seqs_[seq_id];
    if (seq.state != SeqState::kPrefill) continue;  // preempted mid-tick
    std::int32_t done = 0;
    for (std::int32_t k = 0; k < chunk; ++k) {
      if (!EnsureKvToken(seq_id,
                         seq.fed[static_cast<std::size_t>(seq.cursor)])) {
        if (!error_.ok()) return;
        break;  // pool dry with no victims: resume next tick
      }
      const std::int32_t pos = seq.cursor;
      std::span<const float> logits;
      if (!ForwardToken(seq, seq.fed[static_cast<std::size_t>(pos)], pos,
                        &logits)) {
        return;
      }
      ++seq.cursor;
      AddOutstanding(seq.request->tier, -1);  // one less prefill token owed
      if (seq.cursor <= seq.high_water) {
        ++report_.recomputed_tokens;  // swap-in recompute pass
      } else {
        seq.high_water = seq.cursor;
        ++report_.total_tokens;
      }
      ++done;
      if (seq.remaining_prefill() == 0) {
        if (seq.pending_token < 0) {
          // Original prefill complete: the first decoded token is sampled
          // from these logits and committed next tick.
          SampleNext(seq, logits);
          if (seq.outcome.first_token_seconds == 0.0) {
            ttft_marks.push_back(seq_id);
          }
          if (ShouldStop(seq)) {
            // The very first sampled token is EOS/stop: finish with an
            // empty generation, never entering decode.
            FinishSequence(seq_id, FinishReason::kStop);
            break;
          }
        }
        seq.state = SeqState::kDecode;
        if (config_.role == ShardRole::kPrefill && handoff_hook_) {
          // Prefill-role shard: ship the finished KV to a decode shard
          // at tick close (after TTFT is stamped). A mid-tick preemption
          // revokes the plan -- the KV is gone, so it recomputes and
          // hands off on a later tick.
          handoff_ready.push_back(seq_id);
        }
        break;
      }
    }
    if (done > 0) prefill_executed.emplace_back(seq_id, done);
  }

  // ---- close the tick.
  const std::int64_t executed_tokens =
      static_cast<std::int64_t>(decode_executed.size()) + [&] {
        std::int64_t s = 0;
        for (auto& [id, n] : prefill_executed) {
          (void)id;
          s += n;
        }
        return s;
      }();
  if (executed_tokens == 0 && restored_this_tick == 0) {
    // Nothing runnable (e.g. every planned item was deferred). Progress
    // requires an external event; arrivals restart the tick chain.
    if (!residents_.empty() || !waiting_.empty()) {
      error_ = Internal("scheduler tick made no progress with " +
                        std::to_string(residents_.size()) + " residents and " +
                        std::to_string(waiting_.size()) + " waiting");
    }
    return;
  }

  const double tick_seconds = tick_cost_.group_seconds();
  const sim::Cycles tick_cycles =
      std::max<sim::Cycles>(1, SecondsToCycles(tick_seconds));
  const sim::Cycles end_cycles = engine_.now() + tick_cycles;
  const double end_s = u280_.cycles_to_seconds(end_cycles);
  last_tick_end_cycles_ = std::max(last_tick_end_cycles_, end_cycles);
  busy_seconds_ += tick_seconds;

  for (std::size_t seq_id : decode_committed) {
    seqs_[seq_id].outcome.completion_seconds = end_s;
  }
  for (std::size_t seq_id : ttft_marks) {
    if (seqs_[seq_id].outcome.first_token_seconds == 0.0) {
      seqs_[seq_id].outcome.first_token_seconds = end_s;
      if (telemetry_.tracing()) {
        telemetry_.Record(MakeEvent(
            obs::RequestEventKind::kFirstToken,
            static_cast<std::int64_t>(seqs_[seq_id].stream_index),
            tick_index_, end_s, end_s));
      }
    }
  }
  for (const Emission& e : tick_emissions_) {
    // A stop at the end of prefill finishes with no decode commit; its
    // completion is this tick's end like any other finisher's.
    if (e.token < 0 && seqs_[e.seq_id].outcome.completion_seconds == 0.0) {
      seqs_[e.seq_id].outcome.completion_seconds = end_s;
    }
  }
  // Ship prefill-complete sequences after their TTFT stamps are final;
  // the KV pages are extractable once the tick's work is done.
  for (std::size_t seq_id : handoff_ready) {
    if (seqs_[seq_id].state != SeqState::kDecode) continue;  // preempted
    ExtractHandoff(seq_id, end_cycles);
  }

  ++report_.ticks;
  width_sum_ += static_cast<std::int64_t>(decode_executed.size() +
                                          prefill_executed.size());
  // One event path for tick history: the telemetry trace records the
  // tick and its per-sequence work; ServingReport::tick_log is rebuilt
  // from these events in TakeReport when record_ticks is set (the shard
  // keeps a private recorder for that case, see set_telemetry).
  if (telemetry_.tracing()) {
    obs::RequestEvent tick_ev = MakeEvent(obs::RequestEventKind::kTick, -1,
                                          tick_index_, start_s, end_s);
    tick_ev.tokens = executed_tokens;
    telemetry_.Record(std::move(tick_ev));
    for (std::size_t id : decode_executed) {
      obs::RequestEvent ev = MakeEvent(
          obs::RequestEventKind::kDecodeToken,
          static_cast<std::int64_t>(seqs_[id].stream_index), tick_index_,
          start_s, end_s);
      ev.tokens = 1;
      telemetry_.Record(std::move(ev));
    }
    for (auto& [id, n] : prefill_executed) {
      obs::RequestEvent ev = MakeEvent(
          obs::RequestEventKind::kPrefillChunk,
          static_cast<std::int64_t>(seqs_[id].stream_index), tick_index_,
          start_s, end_s);
      ev.tokens = n;
      telemetry_.Record(std::move(ev));
    }
  }
  if (telemetry_.metrics()) {
    obs::ShardTickSample sample;
    sample.end_seconds = end_s;
    sample.tick_seconds = tick_seconds;
    sample.decode_tokens = static_cast<std::int64_t>(decode_executed.size());
    sample.prefill_tokens =
        executed_tokens - static_cast<std::int64_t>(decode_executed.size());
    sample.queue_depth = num_waiting();
    sample.running_seqs = num_residents();
    sample.kv_blocks_in_use = pool_.used_blocks();
    sample.kv_blocks_evictable = pool_.evictable_blocks();
    const KvPoolStats& ps = pool_.stats();
    sample.cum_cache_hit_tokens = ps.prefix_hit_tokens;
    sample.cum_cache_lookup_tokens = ps.prefix_lookup_tokens;
    sample.cum_dma_bytes = ps.dma_bytes_moved;
    sample.cum_preemptions = ps.preemption_releases;
    sample.spec_draft_tokens = report_.spec_draft_tokens - spec_draft_at_open;
    sample.spec_accepted_tokens =
        report_.spec_accepted_tokens - spec_accept_at_open;
    // The tick event runs at its *start* cycles, so snapshotting the
    // registry here would interleave out of timestamp order with other
    // cards' overlapping ticks. Defer the snapshot to an event at the
    // tick's end: the event queue then serializes samples in time order.
    if (telemetry_.OnTickEnd(sample)) {
      // Lane-tagged and always safe: registry writes stage through
      // obs::TelemetryStage under RunParallel, so this only touches
      // lane-owned state plus the staged side channel.
      engine_.ScheduleAt(end_cycles, lane_, nullptr, [this, end_s] {
        telemetry_.SampleNow(end_s);
      });
    }
  }

  // Stream this tick's commits at its end time, ahead of the next tick
  // (the delivery event is scheduled first, so FIFO runs it first):
  // callbacks observe a settled shard and may Submit/Cancel reentrantly.
  if (!tick_emissions_.empty()) {
    pending_emissions_.insert(pending_emissions_.end(),
                              tick_emissions_.begin(), tick_emissions_.end());
    tick_emissions_.clear();
    // Lane-tagged, but only safe while no user emission hooks can run
    // (hook code may Submit/Abort across shards).
    engine_.ScheduleAt(end_cycles, lane_, emissions_parallel_safe_,
                       [this] { DeliverEmissions(); });
  }

  if (!residents_.empty() || !waiting_.empty()) ScheduleTick(end_cycles);

  // The rebalance hook runs last, with this tick's state fully settled:
  // the cluster may steal queued requests from us or submit elsewhere.
  if (kv_blocked_ && kv_pressure_hook_) kv_pressure_hook_();
}

sim::Cycles ShardScheduler::SecondsToCycles(double seconds) const {
  return static_cast<sim::Cycles>(
      std::llround(seconds * u280_.clock_mhz * 1e6));
}

}  // namespace speedllm::serving
