#include "serving/request.hpp"

#include <algorithm>

#include "common/stats.hpp"

namespace speedllm::serving {

std::string_view FinishReasonName(FinishReason reason) {
  switch (reason) {
    case FinishReason::kNone: return "none";
    case FinishReason::kLength: return "length";
    case FinishReason::kStop: return "stop";
    case FinishReason::kCancelled: return "cancelled";
    case FinishReason::kShed: return "shed";
  }
  return "unknown";
}

std::string_view RequestTierName(RequestTier tier) {
  switch (tier) {
    case RequestTier::kInteractive: return "interactive";
    case RequestTier::kStandard: return "standard";
    case RequestTier::kBestEffort: return "best-effort";
  }
  return "unknown";
}

bool IsStopToken(const ServingRequest& request, std::int32_t eos_token,
                 std::int32_t token) {
  if (eos_token >= 0 && token == eos_token) return true;
  return std::find(request.stop_tokens.begin(), request.stop_tokens.end(),
                   token) != request.stop_tokens.end();
}

namespace {

template <typename Getter>
double MeanOf(const std::vector<RequestOutcome>& outcomes, Getter get) {
  if (outcomes.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& o : outcomes) sum += get(o);
  return sum / static_cast<double>(outcomes.size());
}

template <typename Getter>
double PercentileOf(const std::vector<RequestOutcome>& outcomes, double p,
                    Getter get) {
  std::vector<double> samples;
  samples.reserve(outcomes.size());
  for (const auto& o : outcomes) samples.push_back(get(o));
  return Percentile(std::move(samples), p);
}

}  // namespace

double ServingReport::mean_ttft() const {
  return MeanOf(outcomes,
                [](const RequestOutcome& o) { return o.time_to_first_token(); });
}

double ServingReport::mean_latency() const {
  return MeanOf(outcomes, [](const RequestOutcome& o) { return o.latency(); });
}

double ServingReport::ttft_percentile(double p) const {
  return PercentileOf(outcomes, p, [](const RequestOutcome& o) {
    return o.time_to_first_token();
  });
}

double ServingReport::latency_percentile(double p) const {
  return PercentileOf(outcomes, p,
                      [](const RequestOutcome& o) { return o.latency(); });
}

double ServingReport::tier_ttft_percentile(RequestTier tier, double p) const {
  std::vector<double> samples;
  for (const auto& o : outcomes) {
    if (o.tier != tier) continue;
    if (o.finish_reason != FinishReason::kLength &&
        o.finish_reason != FinishReason::kStop) {
      continue;
    }
    samples.push_back(o.time_to_first_token());
  }
  return Percentile(std::move(samples), p);
}

double ServingReport::tpot_percentile(double p) const {
  std::vector<double> samples;
  for (const auto& o : outcomes) {
    if (!o.generated.empty()) samples.push_back(o.time_per_output_token());
  }
  return Percentile(std::move(samples), p);
}

}  // namespace speedllm::serving
