// SpeedLLM -- synthetic serving workload generators.
//
// Builds deterministic request traces for the scheduler benches and the
// load-generator example: Poisson arrivals (open-loop, memoryless) and a
// bursty variant where requests arrive in clumps, which is what stresses
// admission control and preemption. The closed-loop client pool models
// the other regime -- each simulated user has at most one request in
// flight and issues the next one only after the previous finishes plus a
// think-time gap, which is how real chat traffic self-throttles (drive it
// from an api::Engine on_finish callback). All randomness flows through
// explicit common/rng.hpp streams, so a (seed, config) pair always yields
// the same trace regardless of completion order.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "common/rng.hpp"
#include "serving/request.hpp"

namespace speedllm::serving {

/// Shape of an open-loop synthetic trace: arrival rate plus i.i.d.
/// prompt / generation length ranges (all ranges inclusive).
struct WorkloadConfig {
  /// Number of requests in the trace.
  std::int32_t num_requests = 16;
  /// Mean arrival rate, requests per second.
  double rate_rps = 50.0;

  /// Minimum prompt length, tokens (BOS included).
  std::int32_t min_prompt_tokens = 4;
  /// Maximum prompt length, tokens (inclusive).
  std::int32_t max_prompt_tokens = 24;
  /// Minimum generation budget, tokens.
  std::int32_t min_new_tokens = 8;
  /// Maximum generation budget, tokens (inclusive).
  std::int32_t max_new_tokens = 24;
  /// Token ids are drawn from [3, vocab_size).
  std::int32_t vocab_size = 32000;

  /// Bursty shaping: requests arrive in clumps of `burst_size` whose
  /// burst epochs are Poisson at rate_rps / burst_size (so the long-run
  /// request rate matches the Poisson trace at the same rate_rps).
  std::int32_t burst_size = 4;
};

/// Open-loop Poisson arrivals with i.i.d. prompt / generation lengths.
std::vector<ServingRequest> PoissonTrace(Rng& rng,
                                         const WorkloadConfig& config);

/// Clumped arrivals: same marginal rate, much worse instantaneous load.
std::vector<ServingRequest> BurstyTrace(Rng& rng, const WorkloadConfig& config);

// ------------------------------ shared-prefix workloads ---------------

/// Shape of a shared-prefix trace (the traffic prefix caching exists
/// for); see SharedPrefixTrace.
struct SharedPrefixConfig {
  /// Number of requests in the trace.
  std::int32_t num_requests = 32;
  /// Mean arrival rate, requests per second.
  double rate_rps = 200.0;

  /// Probability a request opens with one of the shared system prompts.
  double shared_fraction = 0.8;
  /// Distinct shared system prompts.
  std::int32_t num_prefixes = 2;
  /// Length of each shared prefix, tokens.
  std::int32_t prefix_tokens = 40;
  /// Minimum unique user tokens appended after the shared prefix.
  std::int32_t min_suffix_tokens = 2;
  /// Maximum unique user tokens appended (inclusive).
  std::int32_t max_suffix_tokens = 8;
  /// Minimum generation budget, tokens.
  std::int32_t min_new_tokens = 8;
  /// Maximum generation budget, tokens (inclusive).
  std::int32_t max_new_tokens = 16;
  /// Token ids are drawn from [3, vocab_size).
  std::int32_t vocab_size = 32000;
};

/// Poisson arrivals where `shared_fraction` of the requests start with
/// one of `num_prefixes` fixed system prompts followed by a short unique
/// suffix -- the traffic shape prefix caching exists for (chat frontends
/// pin a system prompt; agents replay tool instructions). The remaining
/// requests draw fully unique prompts of comparable length, so a cache
/// can neither help nor hurt them.
std::vector<ServingRequest> SharedPrefixTrace(Rng& rng,
                                              const SharedPrefixConfig& config);

// ------------------------------ multi-turn chat conversations ---------

/// Shape of the multi-turn chat workload; see MultiTurnChatPool.
struct MultiTurnConfig {
  /// Concurrent simulated users (one growing conversation each).
  std::int32_t num_users = 4;
  /// Turns each user's conversation runs for.
  std::int32_t turns_per_user = 3;
  /// Mean exponential think gap between a turn finishing and the user's
  /// next turn arriving (also before the first turn).
  double mean_think_seconds = 0.01;
  /// Tokens of the system prompt every conversation opens with. Shared
  /// across users, so even first turns prefix-share with each other.
  std::int32_t system_prompt_tokens = 16;
  /// Minimum fresh user-message tokens appended each turn.
  std::int32_t min_user_tokens = 2;
  /// Maximum fresh user-message tokens appended (inclusive).
  std::int32_t max_user_tokens = 6;
  /// Minimum generation budget per turn, tokens.
  std::int32_t min_new_tokens = 4;
  /// Maximum generation budget per turn, tokens (inclusive).
  std::int32_t max_new_tokens = 10;
  /// Token ids are drawn from [3, vocab_size).
  std::int32_t vocab_size = 32000;
};

/// Grows one conversation per user the way a chat client does: every
/// turn's prompt is the full history -- system prompt, then each prior
/// turn's prompt and *generated* answer -- plus a fresh user message, so
/// a prefix-caching pool re-serves the history blocks instead of
/// re-prefilling them and turn latency stays flat as conversations grow.
/// Per-user RNG streams (seeded by user id) draw think gaps, message
/// lengths, and token values, so with a deterministic sampler the traced
/// conversations are byte-identical under any completion interleaving,
/// card count, or cache configuration.
class MultiTurnChatPool {
 public:
  /// Builds `config.num_users` conversations; randomness derives from
  /// (`seed`, user id) only.
  MultiTurnChatPool(std::uint64_t seed, const MultiTurnConfig& config);

  /// Number of simulated users.
  std::int32_t num_users() const {
    return static_cast<std::int32_t>(users_.size());
  }

  /// First turn of `user` (arrival = think gap from time zero): system
  /// prompt + first user message. Must run once per user, before any
  /// OnFinish for that user.
  std::optional<ServingRequest> StartUser(std::int32_t user);

  /// Reports that `user`'s turn finished at `now_seconds` with
  /// `generated` tokens (possibly truncated by a hang-up) and returns
  /// the next turn -- history + generated + new user message, arriving
  /// one think gap later -- or nullopt when the conversation is over.
  std::optional<ServingRequest> OnFinish(
      std::int32_t user, double now_seconds,
      std::span<const std::int32_t> generated);

  /// True while `user` has a turn submitted but not yet finished.
  bool in_flight(std::int32_t user) const {
    return users_[static_cast<std::size_t>(user)].in_flight;
  }
  /// Turns `user` has completed so far.
  std::int32_t turns(std::int32_t user) const {
    return users_[static_cast<std::size_t>(user)].turns;
  }
  /// The conversation so far (the most recent turn's full prompt).
  const std::vector<std::int32_t>& history(std::int32_t user) const {
    return users_[static_cast<std::size_t>(user)].history;
  }
  /// True once every user's conversation has run out of turns.
  bool AllDone() const;

 private:
  struct User {
    Rng rng;
    std::vector<std::int32_t> history;
    std::int32_t turns = 0;
    bool in_flight = false;

    explicit User(std::uint64_t seed) : rng(seed) {}
  };

  ServingRequest NextTurn(User& user, double arrival_seconds);

  MultiTurnConfig config_;
  std::vector<std::int32_t> system_prompt_;
  std::vector<User> users_;
};

// ------------------------------ scenario zoo --------------------------
//
// Named, deterministic workload shapes with realistic tier mixes -- the
// traces the SLO/goodput benches and docs/SCENARIOS.md reason about.
// Each generator draws everything from the caller's Rng stream, so a
// (seed, config) pair always yields the same trace. The default configs
// are sized to fit llama::ModelConfig::Tiny (vocab 512, seq_len 64):
// prompt plus generation budget never exceeds the context window, so
// every zoo trace runs against every preset out of the box.

/// Probability weights of the three request tiers. Weights need not sum
/// to one (they are normalized at draw time); all-zero weights collapse
/// to kStandard. The draw order is tier-index order, so a trace's tier
/// assignment depends only on (seed, mix).
struct TierMix {
  /// Weight of RequestTier::kInteractive.
  double interactive = 0.0;
  /// Weight of RequestTier::kStandard.
  double standard = 1.0;
  /// Weight of RequestTier::kBestEffort.
  double best_effort = 0.0;
};

/// Draws one tier from `mix` (weights normalized; all-zero -> kStandard).
RequestTier DrawTier(Rng& rng, const TierMix& mix);

/// Assigns an i.i.d. tier drawn from `mix` to every request in `trace`,
/// in place -- retrofits a tier mix onto any generator's output.
void ApplyTierMix(Rng& rng, const TierMix& mix,
                  std::vector<ServingRequest>& trace);

/// Shape of the RAG trace; see RagTrace.
struct RagConfig {
  /// Number of requests in the trace.
  std::int32_t num_requests = 24;
  /// Mean arrival rate, requests per second.
  double rate_rps = 100.0;
  /// Distinct retrieved-context documents the trace cycles over.
  std::int32_t num_documents = 3;
  /// Length of each retrieved context, tokens (the "huge shared
  /// prompt"; dwarfs the question and the generation).
  std::int32_t document_tokens = 24;
  /// Minimum unique question tokens appended after the context.
  std::int32_t min_question_tokens = 4;
  /// Maximum unique question tokens appended (inclusive).
  std::int32_t max_question_tokens = 8;
  /// Minimum generation budget, tokens (answers are tiny).
  std::int32_t min_new_tokens = 2;
  /// Maximum generation budget, tokens (inclusive).
  std::int32_t max_new_tokens = 6;
  /// Token ids are drawn from the non-control vocab below this.
  std::int32_t vocab_size = 512;
  /// Tier assignment weights (RAG frontends mix chat and API traffic).
  TierMix tier_mix{0.3, 0.6, 0.1};
};

/// Retrieval-augmented generation: every prompt is one of a few huge
/// shared context documents plus a short unique question, and the
/// generation is tiny -- prefill-dominated traffic where prefix caching
/// and COW sharing carry the run. Poisson arrivals.
std::vector<ServingRequest> RagTrace(Rng& rng, const RagConfig& config);

/// Shape of the agentic-burst trace; see AgenticBurstTrace.
struct AgenticBurstConfig {
  /// Concurrent simulated agents (one tool-call chain each).
  std::int32_t num_agents = 6;
  /// Tool-call steps per agent's chain.
  std::int32_t steps_per_agent = 4;
  /// Mean exponential gap between consecutive agents' wake-ups.
  double mean_agent_gap_seconds = 0.005;
  /// Fixed gap between an agent's consecutive steps (a burst: the whole
  /// chain lands nearly at once, the instantaneous-overload shape).
  double step_gap_seconds = 1e-3;
  /// Tokens of the shared agent scaffold every chain opens with.
  std::int32_t scaffold_tokens = 10;
  /// Minimum tool-result tokens appended to the transcript per step.
  std::int32_t min_tool_tokens = 3;
  /// Maximum tool-result tokens appended (inclusive).
  std::int32_t max_tool_tokens = 7;
  /// Minimum generation budget per step, tokens.
  std::int32_t min_new_tokens = 4;
  /// Maximum generation budget per step, tokens (inclusive).
  std::int32_t max_new_tokens = 10;
  /// Token ids are drawn from the non-control vocab below this.
  std::int32_t vocab_size = 512;
  /// Tier assignment weights (agents sit in interactive loops).
  TierMix tier_mix{0.6, 0.3, 0.1};
};

/// Agentic tool-call bursts: each agent replays a shared scaffold plus
/// its growing tool transcript, and its whole chain arrives in a tight
/// clump -- the bursty, prefix-heavy shape that stresses admission
/// control, preemption, and the prefix cache at once. The returned
/// trace is sorted by arrival time.
std::vector<ServingRequest> AgenticBurstTrace(Rng& rng,
                                              const AgenticBurstConfig& config);

/// Shape of the parallel-sampling trace; see ParallelSamplingTrace.
struct ParallelSamplingConfig {
  /// Number of prompts, each forked into `samples_per_prompt` requests.
  std::int32_t num_groups = 8;
  /// Samples drawn per prompt (n > 1 forks the prompt's KV blocks
  /// through copy-on-write sharing).
  std::int32_t samples_per_prompt = 4;
  /// Mean arrival rate of prompt groups, groups per second.
  double rate_rps = 50.0;
  /// Minimum prompt length, tokens (BOS included).
  std::int32_t min_prompt_tokens = 12;
  /// Maximum prompt length, tokens (inclusive).
  std::int32_t max_prompt_tokens = 24;
  /// Minimum generation budget, tokens (shared by a group's samples).
  std::int32_t min_new_tokens = 8;
  /// Maximum generation budget, tokens (inclusive).
  std::int32_t max_new_tokens = 16;
  /// Token ids are drawn from the non-control vocab below this.
  std::int32_t vocab_size = 512;
  /// When set, sample k of each group carries a per-request
  /// SamplerOverride with temperature `temperature_base +
  /// k * temperature_step` -- the queued-override path under load.
  bool vary_temperature = true;
  /// Temperature of each group's sample 0 (when vary_temperature).
  float temperature_base = 0.7f;
  /// Temperature increment per sample index (when vary_temperature).
  float temperature_step = 0.15f;
  /// Tier assignment weights, drawn once per group (all of a group's
  /// samples share one tier).
  TierMix tier_mix{0.2, 0.6, 0.2};
};

/// Parallel sampling (best-of-n): each prompt arrives n times at the
/// same instant with identical content, so the pool prefix-shares the
/// prompt blocks and forks them copy-on-write at first divergence; the
/// per-stream sampler seeds make every sample's tokens distinct. With
/// `vary_temperature`, samples also exercise queued per-request sampler
/// overrides.
std::vector<ServingRequest> ParallelSamplingTrace(
    Rng& rng, const ParallelSamplingConfig& config);

/// Shape of the long-context summarization trace; see LongContextTrace.
struct LongContextConfig {
  /// Number of requests in the trace.
  std::int32_t num_requests = 8;
  /// Mean arrival rate, requests per second.
  double rate_rps = 20.0;
  /// Minimum document length, tokens (BOS included; fully unique, so
  /// the prefix cache cannot help).
  std::int32_t min_context_tokens = 32;
  /// Maximum document length, tokens (inclusive).
  std::int32_t max_context_tokens = 48;
  /// Minimum summary budget, tokens.
  std::int32_t min_new_tokens = 8;
  /// Maximum summary budget, tokens (inclusive).
  std::int32_t max_new_tokens = 14;
  /// Token ids are drawn from the non-control vocab below this.
  std::int32_t vocab_size = 512;
  /// Tier assignment weights (summarization is background traffic).
  TierMix tier_mix{0.05, 0.25, 0.7};
};

/// Long-context summarization: long fully-unique documents with
/// moderate generation budgets -- KV-capacity-bound traffic that hogs
/// pool blocks, triggers preemption, and (being mostly best-effort)
/// is what admission control sheds first under overload.
std::vector<ServingRequest> LongContextTrace(Rng& rng,
                                             const LongContextConfig& config);

/// The named scenarios of the zoo (docs/SCENARIOS.md describes each).
enum class Scenario {
  kRag,               ///< RagTrace with defaults
  kAgentic,           ///< AgenticBurstTrace with defaults
  kParallelSampling,  ///< ParallelSamplingTrace with defaults
  kLongContext,       ///< LongContextTrace with defaults
};

/// Scenario name ("rag" / "agentic" / "parallel_sampling" /
/// "long_context") for CLI flags, tables, and logs.
std::string_view ScenarioName(Scenario scenario);

/// Parses a ScenarioName back to its Scenario. Returns false (and
/// leaves `*out` untouched) for unknown names.
bool ScenarioFromName(std::string_view name, Scenario* out);

/// Builds `scenario`'s trace with its default config, scaled to about
/// `num_requests` requests when positive (grouped scenarios round to
/// whole chains/groups); `num_requests <= 0` keeps the default size.
std::vector<ServingRequest> ScenarioTrace(Rng& rng, Scenario scenario,
                                          std::int32_t num_requests = 0);

// ------------------------------ closed-loop (per-user) workloads ------

/// Shape of the closed-loop workload; see ClosedLoopClientPool.
struct ClosedLoopConfig {
  /// Concurrent simulated users.
  std::int32_t num_users = 8;
  /// Requests each user issues before retiring.
  std::int32_t requests_per_user = 4;
  /// Mean of the exponential think-time gap a user waits between its
  /// previous request finishing and the next one arriving (also the gap
  /// before the user's first request).
  double mean_think_seconds = 0.01;

  /// Minimum prompt length, tokens (BOS included).
  std::int32_t min_prompt_tokens = 4;
  /// Maximum prompt length, tokens (inclusive).
  std::int32_t max_prompt_tokens = 24;
  /// Minimum generation budget, tokens.
  std::int32_t min_new_tokens = 8;
  /// Maximum generation budget, tokens (inclusive).
  std::int32_t max_new_tokens = 24;
  /// Token ids are drawn from [3, vocab_size).
  std::int32_t vocab_size = 32000;
};

/// Generates each user's request sequence on demand with per-user
/// concurrency of exactly one: StartUser() yields the user's first
/// request, and OnFinish() -- called when that request completes --
/// yields the next (arriving one think-time gap after `now_seconds`) or
/// nullopt once the user's budget is spent. Every user owns a private
/// RNG stream keyed by (seed, user), so request contents and think gaps
/// depend only on the user's own history: traces are byte-identical no
/// matter how the engine interleaves completions across users or cards.
class ClosedLoopClientPool {
 public:
  /// Builds `config.num_users` users; randomness derives from
  /// (`seed`, user id) only.
  ClosedLoopClientPool(std::uint64_t seed, const ClosedLoopConfig& config);

  /// Number of simulated users.
  std::int32_t num_users() const {
    return static_cast<std::int32_t>(users_.size());
  }

  /// First request of `user` (arrival = think gap from time zero).
  /// Returns nullopt when the per-user budget is zero. Must be called
  /// once per user, before any OnFinish for that user.
  std::optional<ServingRequest> StartUser(std::int32_t user);

  /// Reports that `user`'s in-flight request finished at `now_seconds`
  /// and returns the next one (arrival = now + think gap), or nullopt
  /// when the user is done. Calling this for a user with no request in
  /// flight violates the closed-loop invariant and asserts.
  std::optional<ServingRequest> OnFinish(std::int32_t user,
                                         double now_seconds);

  /// True while `user` has a request submitted but not yet finished --
  /// by construction never more than one.
  bool in_flight(std::int32_t user) const {
    return users_[static_cast<std::size_t>(user)].in_flight;
  }
  /// Requests `user` has issued so far (in flight included).
  std::int32_t issued(std::int32_t user) const {
    return users_[static_cast<std::size_t>(user)].issued;
  }
  /// Requests issued across all users.
  std::int32_t total_issued() const { return total_issued_; }
  /// True once every user's budget is spent and nothing is in flight.
  bool AllDone() const;

 private:
  struct User {
    Rng rng;
    std::int32_t issued = 0;
    bool in_flight = false;

    explicit User(std::uint64_t seed) : rng(seed) {}
  };

  ServingRequest NextRequest(User& user, double arrival_seconds);

  ClosedLoopConfig config_;
  std::vector<User> users_;
  std::int32_t total_issued_ = 0;
};

}  // namespace speedllm::serving
