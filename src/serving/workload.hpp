// SpeedLLM -- synthetic serving workload generators.
//
// Builds deterministic request traces for the scheduler benches and the
// load-generator example: Poisson arrivals (open-loop, memoryless) and a
// bursty variant where requests arrive in clumps, which is what stresses
// admission control and preemption. All randomness flows through an
// explicit common/rng.hpp stream, so a (seed, config) pair always yields
// the same trace.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "serving/request.hpp"

namespace speedllm::serving {

struct WorkloadConfig {
  std::int32_t num_requests = 16;
  double rate_rps = 50.0;  // mean arrival rate, requests per second

  std::int32_t min_prompt_tokens = 4;
  std::int32_t max_prompt_tokens = 24;  // inclusive
  std::int32_t min_new_tokens = 8;
  std::int32_t max_new_tokens = 24;  // inclusive
  std::int32_t vocab_size = 32000;

  // Bursty shaping: requests arrive in clumps of `burst_size` whose burst
  // epochs are Poisson at rate_rps / burst_size (so the long-run request
  // rate matches the Poisson trace at the same rate_rps).
  std::int32_t burst_size = 4;
};

/// Open-loop Poisson arrivals with i.i.d. prompt / generation lengths.
std::vector<ServingRequest> PoissonTrace(Rng& rng,
                                         const WorkloadConfig& config);

/// Clumped arrivals: same marginal rate, much worse instantaneous load.
std::vector<ServingRequest> BurstyTrace(Rng& rng, const WorkloadConfig& config);

}  // namespace speedllm::serving
