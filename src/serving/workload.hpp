// SpeedLLM -- synthetic serving workload generators.
//
// Builds deterministic request traces for the scheduler benches and the
// load-generator example: Poisson arrivals (open-loop, memoryless) and a
// bursty variant where requests arrive in clumps, which is what stresses
// admission control and preemption. The closed-loop client pool models
// the other regime -- each simulated user has at most one request in
// flight and issues the next one only after the previous finishes plus a
// think-time gap, which is how real chat traffic self-throttles (drive it
// from an api::Engine on_finish callback). All randomness flows through
// explicit common/rng.hpp streams, so a (seed, config) pair always yields
// the same trace regardless of completion order.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "serving/request.hpp"

namespace speedllm::serving {

struct WorkloadConfig {
  std::int32_t num_requests = 16;
  double rate_rps = 50.0;  // mean arrival rate, requests per second

  std::int32_t min_prompt_tokens = 4;
  std::int32_t max_prompt_tokens = 24;  // inclusive
  std::int32_t min_new_tokens = 8;
  std::int32_t max_new_tokens = 24;  // inclusive
  std::int32_t vocab_size = 32000;

  // Bursty shaping: requests arrive in clumps of `burst_size` whose burst
  // epochs are Poisson at rate_rps / burst_size (so the long-run request
  // rate matches the Poisson trace at the same rate_rps).
  std::int32_t burst_size = 4;
};

/// Open-loop Poisson arrivals with i.i.d. prompt / generation lengths.
std::vector<ServingRequest> PoissonTrace(Rng& rng,
                                         const WorkloadConfig& config);

/// Clumped arrivals: same marginal rate, much worse instantaneous load.
std::vector<ServingRequest> BurstyTrace(Rng& rng, const WorkloadConfig& config);

// ------------------------------ shared-prefix workloads ---------------

struct SharedPrefixConfig {
  std::int32_t num_requests = 32;
  double rate_rps = 200.0;  // mean arrival rate, requests per second

  /// Probability a request opens with one of the shared system prompts.
  double shared_fraction = 0.8;
  std::int32_t num_prefixes = 2;    // distinct shared system prompts
  std::int32_t prefix_tokens = 40;  // length of each shared prefix
  /// Unique user tokens appended after the shared prefix.
  std::int32_t min_suffix_tokens = 2;
  std::int32_t max_suffix_tokens = 8;  // inclusive
  std::int32_t min_new_tokens = 8;
  std::int32_t max_new_tokens = 16;  // inclusive
  std::int32_t vocab_size = 32000;
};

/// Poisson arrivals where `shared_fraction` of the requests start with
/// one of `num_prefixes` fixed system prompts followed by a short unique
/// suffix -- the traffic shape prefix caching exists for (chat frontends
/// pin a system prompt; agents replay tool instructions). The remaining
/// requests draw fully unique prompts of comparable length, so a cache
/// can neither help nor hurt them.
std::vector<ServingRequest> SharedPrefixTrace(Rng& rng,
                                              const SharedPrefixConfig& config);

// ------------------------------ multi-turn chat conversations ---------

struct MultiTurnConfig {
  std::int32_t num_users = 4;
  std::int32_t turns_per_user = 3;
  /// Mean exponential think gap between a turn finishing and the user's
  /// next turn arriving (also before the first turn).
  double mean_think_seconds = 0.01;
  /// Tokens of the system prompt every conversation opens with. Shared
  /// across users, so even first turns prefix-share with each other.
  std::int32_t system_prompt_tokens = 16;
  /// Fresh user-message tokens appended each turn.
  std::int32_t min_user_tokens = 2;
  std::int32_t max_user_tokens = 6;  // inclusive
  std::int32_t min_new_tokens = 4;
  std::int32_t max_new_tokens = 10;  // inclusive
  std::int32_t vocab_size = 32000;
};

/// Grows one conversation per user the way a chat client does: every
/// turn's prompt is the full history -- system prompt, then each prior
/// turn's prompt and *generated* answer -- plus a fresh user message, so
/// a prefix-caching pool re-serves the history blocks instead of
/// re-prefilling them and turn latency stays flat as conversations grow.
/// Per-user RNG streams (seeded by user id) draw think gaps, message
/// lengths, and token values, so with a deterministic sampler the traced
/// conversations are byte-identical under any completion interleaving,
/// card count, or cache configuration.
class MultiTurnChatPool {
 public:
  MultiTurnChatPool(std::uint64_t seed, const MultiTurnConfig& config);

  std::int32_t num_users() const {
    return static_cast<std::int32_t>(users_.size());
  }

  /// First turn of `user` (arrival = think gap from time zero): system
  /// prompt + first user message. Must run once per user, before any
  /// OnFinish for that user.
  std::optional<ServingRequest> StartUser(std::int32_t user);

  /// Reports that `user`'s turn finished at `now_seconds` with
  /// `generated` tokens (possibly truncated by a hang-up) and returns
  /// the next turn -- history + generated + new user message, arriving
  /// one think gap later -- or nullopt when the conversation is over.
  std::optional<ServingRequest> OnFinish(
      std::int32_t user, double now_seconds,
      std::span<const std::int32_t> generated);

  bool in_flight(std::int32_t user) const {
    return users_[static_cast<std::size_t>(user)].in_flight;
  }
  std::int32_t turns(std::int32_t user) const {
    return users_[static_cast<std::size_t>(user)].turns;
  }
  /// The conversation so far (the most recent turn's full prompt).
  const std::vector<std::int32_t>& history(std::int32_t user) const {
    return users_[static_cast<std::size_t>(user)].history;
  }
  bool AllDone() const;

 private:
  struct User {
    Rng rng;
    std::vector<std::int32_t> history;
    std::int32_t turns = 0;
    bool in_flight = false;

    explicit User(std::uint64_t seed) : rng(seed) {}
  };

  ServingRequest NextTurn(User& user, double arrival_seconds);

  MultiTurnConfig config_;
  std::vector<std::int32_t> system_prompt_;
  std::vector<User> users_;
};

// ------------------------------ closed-loop (per-user) workloads ------

struct ClosedLoopConfig {
  std::int32_t num_users = 8;
  std::int32_t requests_per_user = 4;
  /// Mean of the exponential think-time gap a user waits between its
  /// previous request finishing and the next one arriving (also the gap
  /// before the user's first request).
  double mean_think_seconds = 0.01;

  std::int32_t min_prompt_tokens = 4;
  std::int32_t max_prompt_tokens = 24;  // inclusive
  std::int32_t min_new_tokens = 8;
  std::int32_t max_new_tokens = 24;  // inclusive
  std::int32_t vocab_size = 32000;
};

/// Generates each user's request sequence on demand with per-user
/// concurrency of exactly one: StartUser() yields the user's first
/// request, and OnFinish() -- called when that request completes --
/// yields the next (arriving one think-time gap after `now_seconds`) or
/// nullopt once the user's budget is spent. Every user owns a private
/// RNG stream keyed by (seed, user), so request contents and think gaps
/// depend only on the user's own history: traces are byte-identical no
/// matter how the engine interleaves completions across users or cards.
class ClosedLoopClientPool {
 public:
  ClosedLoopClientPool(std::uint64_t seed, const ClosedLoopConfig& config);

  std::int32_t num_users() const {
    return static_cast<std::int32_t>(users_.size());
  }

  /// First request of `user` (arrival = think gap from time zero).
  /// Returns nullopt when the per-user budget is zero. Must be called
  /// once per user, before any OnFinish for that user.
  std::optional<ServingRequest> StartUser(std::int32_t user);

  /// Reports that `user`'s in-flight request finished at `now_seconds`
  /// and returns the next one (arrival = now + think gap), or nullopt
  /// when the user is done. Calling this for a user with no request in
  /// flight violates the closed-loop invariant and asserts.
  std::optional<ServingRequest> OnFinish(std::int32_t user,
                                         double now_seconds);

  /// True while `user` has a request submitted but not yet finished --
  /// by construction never more than one.
  bool in_flight(std::int32_t user) const {
    return users_[static_cast<std::size_t>(user)].in_flight;
  }
  std::int32_t issued(std::int32_t user) const {
    return users_[static_cast<std::size_t>(user)].issued;
  }
  std::int32_t total_issued() const { return total_issued_; }
  bool AllDone() const;

 private:
  struct User {
    Rng rng;
    std::int32_t issued = 0;
    bool in_flight = false;

    explicit User(std::uint64_t seed) : rng(seed) {}
  };

  ServingRequest NextRequest(User& user, double arrival_seconds);

  ClosedLoopConfig config_;
  std::vector<User> users_;
  std::int32_t total_issued_ = 0;
};

}  // namespace speedllm::serving
