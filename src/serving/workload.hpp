// SpeedLLM -- synthetic serving workload generators.
//
// Builds deterministic request traces for the scheduler benches and the
// load-generator example: Poisson arrivals (open-loop, memoryless) and a
// bursty variant where requests arrive in clumps, which is what stresses
// admission control and preemption. The closed-loop client pool models
// the other regime -- each simulated user has at most one request in
// flight and issues the next one only after the previous finishes plus a
// think-time gap, which is how real chat traffic self-throttles (drive it
// from an api::Engine on_finish callback). All randomness flows through
// explicit common/rng.hpp streams, so a (seed, config) pair always yields
// the same trace regardless of completion order.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "serving/request.hpp"

namespace speedllm::serving {

struct WorkloadConfig {
  std::int32_t num_requests = 16;
  double rate_rps = 50.0;  // mean arrival rate, requests per second

  std::int32_t min_prompt_tokens = 4;
  std::int32_t max_prompt_tokens = 24;  // inclusive
  std::int32_t min_new_tokens = 8;
  std::int32_t max_new_tokens = 24;  // inclusive
  std::int32_t vocab_size = 32000;

  // Bursty shaping: requests arrive in clumps of `burst_size` whose burst
  // epochs are Poisson at rate_rps / burst_size (so the long-run request
  // rate matches the Poisson trace at the same rate_rps).
  std::int32_t burst_size = 4;
};

/// Open-loop Poisson arrivals with i.i.d. prompt / generation lengths.
std::vector<ServingRequest> PoissonTrace(Rng& rng,
                                         const WorkloadConfig& config);

/// Clumped arrivals: same marginal rate, much worse instantaneous load.
std::vector<ServingRequest> BurstyTrace(Rng& rng, const WorkloadConfig& config);

// ------------------------------ closed-loop (per-user) workloads ------

struct ClosedLoopConfig {
  std::int32_t num_users = 8;
  std::int32_t requests_per_user = 4;
  /// Mean of the exponential think-time gap a user waits between its
  /// previous request finishing and the next one arriving (also the gap
  /// before the user's first request).
  double mean_think_seconds = 0.01;

  std::int32_t min_prompt_tokens = 4;
  std::int32_t max_prompt_tokens = 24;  // inclusive
  std::int32_t min_new_tokens = 8;
  std::int32_t max_new_tokens = 24;  // inclusive
  std::int32_t vocab_size = 32000;
};

/// Generates each user's request sequence on demand with per-user
/// concurrency of exactly one: StartUser() yields the user's first
/// request, and OnFinish() -- called when that request completes --
/// yields the next (arriving one think-time gap after `now_seconds`) or
/// nullopt once the user's budget is spent. Every user owns a private
/// RNG stream keyed by (seed, user), so request contents and think gaps
/// depend only on the user's own history: traces are byte-identical no
/// matter how the engine interleaves completions across users or cards.
class ClosedLoopClientPool {
 public:
  ClosedLoopClientPool(std::uint64_t seed, const ClosedLoopConfig& config);

  std::int32_t num_users() const {
    return static_cast<std::int32_t>(users_.size());
  }

  /// First request of `user` (arrival = think gap from time zero).
  /// Returns nullopt when the per-user budget is zero. Must be called
  /// once per user, before any OnFinish for that user.
  std::optional<ServingRequest> StartUser(std::int32_t user);

  /// Reports that `user`'s in-flight request finished at `now_seconds`
  /// and returns the next one (arrival = now + think gap), or nullopt
  /// when the user is done. Calling this for a user with no request in
  /// flight violates the closed-loop invariant and asserts.
  std::optional<ServingRequest> OnFinish(std::int32_t user,
                                         double now_seconds);

  /// True while `user` has a request submitted but not yet finished --
  /// by construction never more than one.
  bool in_flight(std::int32_t user) const {
    return users_[static_cast<std::size_t>(user)].in_flight;
  }
  std::int32_t issued(std::int32_t user) const {
    return users_[static_cast<std::size_t>(user)].issued;
  }
  std::int32_t total_issued() const { return total_issued_; }
  bool AllDone() const;

 private:
  struct User {
    Rng rng;
    std::int32_t issued = 0;
    bool in_flight = false;

    explicit User(std::uint64_t seed) : rng(seed) {}
  };

  ServingRequest NextRequest(User& user, double arrival_seconds);

  ClosedLoopConfig config_;
  std::vector<User> users_;
  std::int32_t total_issued_ = 0;
};

}  // namespace speedllm::serving
