// SpeedLLM -- simulated card-to-card interconnect and cluster-wide
// prefix-cache federation (the disaggregation layer).
//
// Two pieces live here. serving::Interconnect queues every KV byte that
// moves -- card-local COW/restore/swap DMA and cross-card KV transfers
// -- on per-card hw::HbmStack stations plus one serial link station per
// directed card pair, so concurrent moves serialize honestly instead of
// being charged additively (the PR-5 model). A cross-card transfer is
// store-and-forward: read out of the source card's HBM channel group,
// cross the link, write into the destination's group. KV traffic rides
// the KV channel group of each stack; weight streams occupy disjoint
// groups per the U280 HBM switch model (hw/hbm.hpp), so the contention
// that matters -- KV transfer vs. KV DMA on one card -- is modeled
// station-accurately while uncontended moves keep the exact PR-5 cost.
//
// serving::PrefixDirectory is the cluster-wide prefix index: it mirrors
// every card's content-address index via KvCacheListener callbacks
// (KvBlockPool hash-chain inserts/evicts), answers "which cards hold
// this prompt's longest cached prefix" at admission, and exports a
// token-level snapshot that survives api::Engine restarts. Admission
// arbitration (remote-fetch vs. local-recompute) lives in
// serving::ClusterSession; this file supplies the mechanism.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "hw/cluster.hpp"
#include "hw/hbm.hpp"
#include "llama/sampler.hpp"
#include "serving/kv_pool.hpp"
#include "serving/request.hpp"
#include "sim/station.hpp"

namespace speedllm::serving {

/// Queues KV byte movement on shared per-card HBM stations and per-link
/// stations. All timing is in kernel-clock cycles on the cluster's
/// shared discrete-event clock; callers convert to seconds via
/// hw::U280Config::cycles_to_seconds.
class Interconnect {
 public:
  /// Builds one HBM channel-group station set per card and one serial
  /// link station per directed card pair from `cards` (which must
  /// validate). The config must outlive nothing -- it is copied.
  explicit Interconnect(const hw::MultiCardConfig& cards);

  /// Queues a card-local DMA move of `bytes` (COW / restore / swap) on
  /// `card`'s HBM channel group, starting no earlier than `ready`.
  /// Uncontended, the window ends exactly `dma_setup + hbm latency +
  /// ceil(bytes / aggregate bandwidth)` cycles after `ready` -- the
  /// PR-5 additive cost -- but a busy channel pushes the start out.
  hw::TransferTiming LocalDma(sim::Cycles ready, std::uint64_t bytes,
                              std::int32_t card);

  /// Queues a cross-card KV transfer of `bytes` from `src` to `dst`:
  /// source HBM read, link crossing, destination HBM write, each leg
  /// waiting for its station. Returns the full window (start = source
  /// read start, end = destination write end).
  hw::TransferTiming Transfer(sim::Cycles ready, std::uint64_t bytes,
                              std::int32_t src, std::int32_t dst);

  /// Non-mutating estimate of Transfer's completion cycle given current
  /// station occupancy -- the fetch side of the admission arbiter's
  /// remote-fetch vs. local-recompute comparison.
  sim::Cycles EstimateTransferEnd(sim::Cycles ready, std::uint64_t bytes,
                                  std::int32_t src, std::int32_t dst) const;

  /// Cards this interconnect spans.
  std::int32_t num_cards() const {
    return static_cast<std::int32_t>(stacks_.size());
  }
  /// Cumulative card-local DMA bytes queued through `card`'s stations --
  /// reconciles against that card's KvPoolStats::dma_bytes_moved.
  std::int64_t local_dma_bytes(std::int32_t card) const {
    return local_dma_bytes_[static_cast<std::size_t>(card)];
  }
  /// Cumulative bytes shipped over the directed link `src` -> `dst`.
  std::int64_t link_bytes(std::int32_t src, std::int32_t dst) const {
    return link_bytes_[LinkIndex(src, dst)];
  }
  /// Cumulative bytes shipped out of `card` over any link.
  std::int64_t transfer_out_bytes(std::int32_t card) const;
  /// Cumulative bytes shipped into `card` over any link.
  std::int64_t transfer_in_bytes(std::int32_t card) const;
  /// Total cross-card bytes over all links.
  std::int64_t total_transfer_bytes() const;
  /// Number of cross-card transfers completed or scheduled.
  std::int64_t num_transfers() const { return num_transfers_; }

 private:
  std::size_t LinkIndex(std::int32_t src, std::int32_t dst) const {
    return static_cast<std::size_t>(src) * stacks_.size() +
           static_cast<std::size_t>(dst);
  }
  sim::Cycles LinkCycles(std::uint64_t bytes) const;

  hw::InterconnectConfig config_;
  std::vector<hw::HbmConfig> hbm_;                    // per card
  std::vector<std::unique_ptr<hw::HbmStack>> stacks_; // per card
  std::vector<sim::Station> links_;                   // src * n + dst
  std::vector<std::int64_t> local_dma_bytes_;
  std::vector<std::int64_t> link_bytes_;
  std::int64_t num_transfers_ = 0;
};

/// A prefill-complete sequence in flight between a prefill shard and a
/// decode shard: everything the destination needs to continue decoding
/// with a byte-identical token stream. The sampler travels by value so
/// its RNG stream continues exactly where the prefill shard left it.
struct KvHandoff {
  /// The original request (owned by the cluster; outlives the handoff).
  const ServingRequest* request = nullptr;
  /// Global request stream index.
  std::size_t stream_index = 0;
  /// Mid-stream sampler state (already consumed the first token's draw).
  llama::Sampler sampler{llama::SamplerConfig{}};
  /// Prompt tokens already forwarded on the prefill shard; the decode
  /// shard rebuilds its executor KV from these at zero simulated compute
  /// (the KV pages arrive over the interconnect).
  std::vector<std::int32_t> fed;
  /// First sampled token, not yet committed or emitted.
  std::int32_t pending_token = -1;
  /// Outcome accumulated so far (arrival/admission/TTFT stamped on the
  /// prefill shard; completion is stamped where decoding finishes).
  RequestOutcome outcome;
  /// Physical KV payload shipped, dtype-aware: whole blocks at the
  /// pool's block_bytes() (int8 pools ship roughly half of fp16's).
  std::int64_t kv_bytes = 0;
};

/// Token-level image of the cluster-wide prefix index: which full-block
/// prompt prefixes each card held. Serializable across api::Engine
/// restarts -- importing it warm-starts each card's pool (and thereby
/// the directory itself) at zero simulated cost.
struct PrefixDirectorySnapshot {
  /// One card-resident cached prefix chain.
  struct Chain {
    /// Card whose pool held the chain.
    std::int32_t card = 0;
    /// Full token prefix, a whole number of blocks long.
    std::vector<std::int32_t> tokens;
  };
  /// Maximal chains per card, deterministically ordered.
  std::vector<Chain> chains;
};

/// Cluster-wide prefix index over the per-card content-addressed pools.
/// Attach() subscribes it to a pool's index changes; Locate() walks the
/// same dtype-seeded hash chain the pools use, so a hit here is exactly
/// a hit some card's MatchCachedPrefix would report. Supports up to 64
/// cards (card sets are bitmasks).
class PrefixDirectory {
 public:
  PrefixDirectory();
  ~PrefixDirectory();
  PrefixDirectory(const PrefixDirectory&) = delete;
  PrefixDirectory& operator=(const PrefixDirectory&) = delete;

  /// Result of a cluster-wide longest-prefix probe.
  struct Location {
    /// Prompt tokens covered by the deepest chain some card fully holds.
    std::int64_t matched_tokens = 0;
    /// Full blocks backing them.
    std::int64_t matched_blocks = 0;
    /// Bitmask of cards holding the entire contiguous prefix.
    std::uint64_t card_mask = 0;
  };

  /// Subscribes to `pool`'s index changes as `card` and records the
  /// pool's dtype chain seed (for snapshot root detection). The pool
  /// must outlive this directory or be detached first (the directory
  /// detaches every attached pool on destruction).
  void Attach(std::int32_t card, KvBlockPool* pool);

  /// Longest prefix of `tokens` (capped at `max_tokens`) fully held by
  /// at least one card outside `exclude_mask`, walking the chain from
  /// `chain_seed` in `block_size_tokens` steps. Cards whose pool dtype
  /// differs from the seed's dtype never match (their chains hash
  /// differently), so a fetch candidate always has compatible blocks.
  Location Locate(std::span<const std::int32_t> tokens,
                  std::int64_t max_tokens, std::uint64_t chain_seed,
                  std::uint32_t block_size_tokens,
                  std::uint64_t exclude_mask = 0) const;

  /// Token-level snapshot of every card's maximal cached chains.
  PrefixDirectorySnapshot Export() const;

  /// Distinct chain hashes currently indexed.
  std::int64_t entries() const;

 private:
  struct CardListener;
  struct Impl;
  void OnInsert(std::int32_t card, std::uint64_t chain_hash,
                std::uint64_t parent_hash,
                std::span<const std::int32_t> block_tokens);
  void OnEvict(std::int32_t card, std::uint64_t chain_hash);

  std::unique_ptr<Impl> impl_;
};

}  // namespace speedllm::serving
