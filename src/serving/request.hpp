// SpeedLLM -- serving request / outcome / report types.
//
// Shared vocabulary between the continuous-batching scheduler
// (serving/scheduler.hpp) and the legacy round-robin simulator
// (runtime/serving.hpp). Latency accounting follows the llm-serving
// convention: TTFT is measured from arrival to the first sampled token,
// end-to-end latency from arrival to the last committed token.
#pragma once

#include <cstdint>
#include <functional>
#include <string_view>
#include <vector>

namespace speedllm::serving {

struct ServingRequest {
  std::vector<std::int32_t> prompt;
  std::int32_t max_new_tokens = 16;
  double arrival_seconds = 0.0;  // simulated arrival time
  /// Sampling any of these ids ends generation early (FinishReason::kStop)
  /// without committing the stop token; SamplerConfig::eos_token is the
  /// model-wide equivalent.
  std::vector<std::int32_t> stop_tokens;
};

/// Why a request's generation ended.
enum class FinishReason {
  kNone = 0,   // still in flight
  kLength,     // generated max_new_tokens
  kStop,       // sampled a stop token / EOS before the budget ran out
  kCancelled,  // aborted mid-flight (api::Engine::Cancel)
};

std::string_view FinishReasonName(FinishReason reason);

/// True when sampling `token` must terminate `request` early: either the
/// per-request stop set or the sampler-wide EOS id (< 0 disables) hit.
bool IsStopToken(const ServingRequest& request, std::int32_t eos_token,
                 std::int32_t token);

struct RequestOutcome {
  std::vector<std::int32_t> generated;
  double arrival_seconds = 0.0;
  double admission_seconds = 0.0;    // first tick this request was scheduled
  double first_token_seconds = 0.0;  // absolute time of first decoded token
  double completion_seconds = 0.0;   // absolute time of last token
  std::int32_t prompt_tokens = 0;
  std::int32_t preemptions = 0;  // times swapped out of the KV pool
  FinishReason finish_reason = FinishReason::kNone;

  double time_to_first_token() const {
    return first_token_seconds - arrival_seconds;
  }
  double latency() const { return completion_seconds - arrival_seconds; }
  double queueing_delay() const { return admission_seconds - arrival_seconds; }
  /// Mean decode time per generated token. `first_token_seconds` marks
  /// the *sampling* of the first token (end of prefill); each of the n
  /// generated tokens then commits one decode tick later, so the span
  /// covers exactly n inter-tick gaps and divides by n, not n-1.
  double time_per_output_token() const {
    if (generated.empty()) return 0.0;
    return (completion_seconds - first_token_seconds) /
           static_cast<double>(generated.size());
  }
};

/// One scheduler step (recorded when SchedulerConfig::record_ticks is on;
/// the `*_seqs` vectors hold indices into the original request vector).
struct TickRecord {
  double start_seconds = 0.0;
  double end_seconds = 0.0;
  std::vector<std::size_t> decode_seqs;
  std::vector<std::size_t> prefill_seqs;
  std::int32_t prefill_tokens = 0;

  std::int32_t batch_width() const {
    return static_cast<std::int32_t>(decode_seqs.size() +
                                     prefill_seqs.size());
  }
};

struct ServingReport {
  std::vector<RequestOutcome> outcomes;
  double makespan_seconds = 0.0;
  std::int64_t total_tokens = 0;  // unique prompt + generated tokens processed
  double device_tokens_per_second = 0.0;

  // Continuous-batching aggregates (zero on the legacy round-robin path).
  std::int64_t ticks = 0;
  double mean_batch_width = 0.0;
  std::int64_t preemptions = 0;
  std::int64_t recomputed_tokens = 0;  // swap-in recompute work
  std::int64_t stopped_requests = 0;   // finished early on a stop token/EOS
  std::int64_t cancelled_requests = 0;
  /// Budgeted decode tokens never generated because a stop token/EOS
  /// ended the request first (device work the early exit saved).
  std::int64_t stop_saved_tokens = 0;
  std::int64_t peak_kv_blocks = 0;
  std::int64_t kv_block_capacity = 0;
  std::uint64_t kv_block_bytes = 0;     // bytes per block
  std::uint64_t kv_capacity_bytes = 0;  // pool budget

  // Prefix-cache aggregates (KvBlockPool; zero when caching is off).
  std::int64_t prefix_cache_queries = 0;  // admissions that probed the cache
  std::int64_t prefix_cache_hits = 0;     // admissions matching >= 1 block
  /// Prefill tokens served from cached blocks instead of device compute
  /// (includes recompute a swapped-in sequence skipped).
  std::int64_t prefix_cache_hit_tokens = 0;
  std::int64_t prefix_cache_lookup_tokens = 0;  // tokens offered to the cache
  std::int64_t cow_copies = 0;       // copy-on-write block copies
  std::int64_t cache_evictions = 0;  // cold cached blocks reclaimed

  // Simulated DMA traffic (PR 5): KV bytes actually moved by
  // copy-on-write copies, prefix-cache restores, and preemption
  // swap-outs. `dma_time_seconds` is the simulated time those moves
  // cost against the HBM bandwidth -- zero when
  // SchedulerConfig::charge_dma_cost is off (bytes accumulate either
  // way), so the prefix-cache speedup claims stay honest about what a
  // restore actually costs.
  std::int64_t dma_bytes_moved = 0;
  double dma_time_seconds = 0.0;

  std::vector<TickRecord> tick_log;     // only when record_ticks

  double mean_ttft() const;
  double mean_latency() const;
  /// Interpolated percentiles; `p` is a fraction in [0, 1].
  double ttft_percentile(double p) const;
  double latency_percentile(double p) const;
  /// Time-per-output-token percentile over multi-token generations.
  double tpot_percentile(double p) const;
  /// Real interpolated p99 end-to-end latency (historically "p99ish",
  /// which was a max; the name survives for source compatibility).
  double p99ish_latency() const { return latency_percentile(0.99); }
  /// Fraction of cache-eligible prefill tokens served from cached
  /// blocks. 0 when caching is off or nothing was eligible.
  double cache_hit_rate() const {
    return prefix_cache_lookup_tokens > 0
               ? static_cast<double>(prefix_cache_hit_tokens) /
                     static_cast<double>(prefix_cache_lookup_tokens)
               : 0.0;
  }
};

// ----- online emission hooks (shard -> cluster session -> api::Engine) -----
//
// Tokens are delivered at the simulated end of the tick that committed
// them; the finish hook fires once per request with the final outcome
// (still owned by the shard until its report is harvested).

using TokenEmissionHook = std::function<void(
    std::size_t stream_index, std::int32_t token, double time_seconds)>;
using FinishEmissionHook = std::function<void(
    std::size_t stream_index, FinishReason reason,
    const RequestOutcome& outcome, double time_seconds)>;

}  // namespace speedllm::serving
