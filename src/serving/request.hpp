// SpeedLLM -- serving request / outcome / report types.
//
// Shared vocabulary between the continuous-batching scheduler
// (serving/scheduler.hpp) and the legacy round-robin simulator
// (runtime/serving.hpp). Latency accounting follows the llm-serving
// convention: TTFT is measured from arrival to the first sampled token,
// end-to-end latency from arrival to the last committed token.
#pragma once

#include <cstdint>
#include <vector>

namespace speedllm::serving {

struct ServingRequest {
  std::vector<std::int32_t> prompt;
  std::int32_t max_new_tokens = 16;
  double arrival_seconds = 0.0;  // simulated arrival time
};

struct RequestOutcome {
  std::vector<std::int32_t> generated;
  double arrival_seconds = 0.0;
  double admission_seconds = 0.0;    // first tick this request was scheduled
  double first_token_seconds = 0.0;  // absolute time of first decoded token
  double completion_seconds = 0.0;   // absolute time of last token
  std::int32_t prompt_tokens = 0;
  std::int32_t preemptions = 0;  // times swapped out of the KV pool

  double time_to_first_token() const {
    return first_token_seconds - arrival_seconds;
  }
  double latency() const { return completion_seconds - arrival_seconds; }
  double queueing_delay() const { return admission_seconds - arrival_seconds; }
  /// Mean decode time per generated token. `first_token_seconds` marks
  /// the *sampling* of the first token (end of prefill); each of the n
  /// generated tokens then commits one decode tick later, so the span
  /// covers exactly n inter-tick gaps and divides by n, not n-1.
  double time_per_output_token() const {
    if (generated.empty()) return 0.0;
    return (completion_seconds - first_token_seconds) /
           static_cast<double>(generated.size());
  }
};

/// One scheduler step (recorded when SchedulerConfig::record_ticks is on;
/// the `*_seqs` vectors hold indices into the original request vector).
struct TickRecord {
  double start_seconds = 0.0;
  double end_seconds = 0.0;
  std::vector<std::size_t> decode_seqs;
  std::vector<std::size_t> prefill_seqs;
  std::int32_t prefill_tokens = 0;

  std::int32_t batch_width() const {
    return static_cast<std::int32_t>(decode_seqs.size() +
                                     prefill_seqs.size());
  }
};

struct ServingReport {
  std::vector<RequestOutcome> outcomes;
  double makespan_seconds = 0.0;
  std::int64_t total_tokens = 0;  // unique prompt + generated tokens processed
  double device_tokens_per_second = 0.0;

  // Continuous-batching aggregates (zero on the legacy round-robin path).
  std::int64_t ticks = 0;
  double mean_batch_width = 0.0;
  std::int64_t preemptions = 0;
  std::int64_t recomputed_tokens = 0;  // swap-in recompute work
  std::int64_t peak_kv_blocks = 0;
  std::int64_t kv_block_capacity = 0;
  std::uint64_t kv_block_bytes = 0;     // bytes per block
  std::uint64_t kv_capacity_bytes = 0;  // pool budget
  std::vector<TickRecord> tick_log;     // only when record_ticks

  double mean_ttft() const;
  double mean_latency() const;
  /// Interpolated percentiles; `p` is a fraction in [0, 1].
  double ttft_percentile(double p) const;
  double latency_percentile(double p) const;
  /// Time-per-output-token percentile over multi-token generations.
  double tpot_percentile(double p) const;
  /// Real interpolated p99 end-to-end latency (historically "p99ish",
  /// which was a max; the name survives for source compatibility).
  double p99ish_latency() const { return latency_percentile(0.99); }
};

}  // namespace speedllm::serving
