// SpeedLLM -- serving request / outcome / report types.
//
// Shared vocabulary between the continuous-batching scheduler
// (serving/scheduler.hpp) and the legacy round-robin simulator
// (runtime/serving.hpp). Latency accounting follows the llm-serving
// convention: TTFT is measured from arrival to the first sampled token,
// end-to-end latency from arrival to the last committed token.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string_view>
#include <vector>

namespace speedllm::serving {

/// Per-request priority tier. Tiers order scheduling decisions only --
/// admission, preemption-victim selection, decode-budget allocation, and
/// load shedding -- never token content: a request generates the same
/// bytes at any tier (locked by tests/test_slo.cpp). Lower numeric value
/// means higher priority.
enum class RequestTier : std::int8_t {
  kInteractive = 0,  ///< chat-latency traffic; tightest SLO, shed last
  kStandard = 1,     ///< default tier for API-style traffic
  kBestEffort = 2,   ///< batch/background traffic; shed first
};

/// Number of distinct tiers (size of per-tier config/report arrays).
inline constexpr int kNumTiers = 3;

/// Human-readable tier name ("interactive" / "standard" / "best-effort")
/// for tables, metric labels, and logs.
std::string_view RequestTierName(RequestTier tier);

/// Index of `tier` into a per-tier array (the numeric priority).
inline int TierIndex(RequestTier tier) { return static_cast<int>(tier); }

/// Latency targets one tier promises its requests. A request attains its
/// SLO when TTFT and mean TPOT both land at or under the targets;
/// non-positive targets mean "unbounded" and always attain. Goodput
/// (ServingReport::goodput_tokens_per_second) counts only the generated
/// tokens of SLO-attaining requests.
struct TierSlo {
  /// Time-to-first-token target in seconds (<= 0 disables the bound).
  double ttft_target_seconds = 0.0;
  /// Mean time-per-output-token target in seconds (<= 0 disables).
  double tpot_target_seconds = 0.0;
};

/// Optional per-request sampler knobs layered over the engine-wide
/// llama::SamplerConfig at submission. Unset fields inherit the engine
/// default; the per-request seed derivation (seed + stream * 7919) is
/// never overridden, so overridden streams stay independent of batch
/// composition and placement exactly like default ones.
struct SamplerOverride {
  /// Replaces SamplerConfig::temperature when `has_temperature` is set.
  float temperature = 1.0f;
  /// True when `temperature` participates.
  bool has_temperature = false;
  /// Replaces SamplerConfig::top_p when `has_top_p` is set.
  float top_p = 1.0f;
  /// True when `top_p` participates.
  bool has_top_p = false;
  /// Replaces SamplerConfig::eos_token when `has_eos_token` is set
  /// (< 0 disables EOS for this request).
  std::int32_t eos_token = -1;
  /// True when `eos_token` participates.
  bool has_eos_token = false;

  /// True when no field participates (the override is a no-op).
  bool empty() const {
    return !has_temperature && !has_top_p && !has_eos_token;
  }
};

/// One inference request as submitted to the serving stack.
struct ServingRequest {
  /// Prompt token ids (must be non-empty; conventionally BOS-first).
  std::vector<std::int32_t> prompt;
  /// Decode-token budget; generation ends with FinishReason::kLength
  /// when it is exhausted.
  std::int32_t max_new_tokens = 16;
  /// Simulated arrival time in seconds.
  double arrival_seconds = 0.0;
  /// Sampling any of these ids ends generation early (FinishReason::kStop)
  /// without committing the stop token; SamplerConfig::eos_token is the
  /// model-wide equivalent.
  std::vector<std::int32_t> stop_tokens;
  /// Priority tier; orders scheduling and shedding, never token content.
  RequestTier tier = RequestTier::kStandard;
  /// Per-request sampler knobs layered over the engine default.
  SamplerOverride sampler{};
};

/// Why a request's generation ended.
enum class FinishReason {
  kNone = 0,   ///< still in flight
  kLength,     ///< generated max_new_tokens
  kStop,       ///< sampled a stop token / EOS before the budget ran out
  kCancelled,  ///< aborted mid-flight (api::Engine::Cancel)
  kShed,       ///< rejected by admission control before placement
};

/// Human-readable reason name ("none" / "length" / "stop" / "cancelled" /
/// "shed") for tables, event details, and logs.
std::string_view FinishReasonName(FinishReason reason);

/// True when sampling `token` must terminate `request` early: either the
/// per-request stop set or the sampler-wide EOS id (< 0 disables) hit.
bool IsStopToken(const ServingRequest& request, std::int32_t eos_token,
                 std::int32_t token);

/// Final per-request accounting, harvested into ServingReport::outcomes.
struct RequestOutcome {
  /// Tokens generated, in commit order (empty for shed requests).
  std::vector<std::int32_t> generated;
  /// Simulated arrival time, copied from the request.
  double arrival_seconds = 0.0;
  /// First tick this request was scheduled (0 if never admitted).
  double admission_seconds = 0.0;
  /// Absolute time of the first decoded token (0 if none).
  double first_token_seconds = 0.0;
  /// Absolute time of the last token (0 if none).
  double completion_seconds = 0.0;
  /// Prompt length in tokens.
  std::int32_t prompt_tokens = 0;
  /// Times this request was swapped out of the KV pool.
  std::int32_t preemptions = 0;
  /// 1 when this request's finished prefill KV was shipped from a
  /// prefill shard to a decode shard over the interconnect; 0 in unified
  /// mode (a request hands off at most once -- it then lives on the
  /// decode shard for good).
  std::int32_t handoffs = 0;
  /// Priority tier the request ran (or was shed) at.
  RequestTier tier = RequestTier::kStandard;
  /// Terminal state of the request.
  FinishReason finish_reason = FinishReason::kNone;

  /// Arrival to first sampled token, seconds.
  double time_to_first_token() const {
    return first_token_seconds - arrival_seconds;
  }
  /// Arrival to last committed token, seconds.
  double latency() const { return completion_seconds - arrival_seconds; }
  /// Arrival to first scheduling, seconds.
  double queueing_delay() const { return admission_seconds - arrival_seconds; }
  /// Mean decode time per generated token. `first_token_seconds` marks
  /// the *sampling* of the first token (end of prefill); each of the n
  /// generated tokens then commits one decode tick later, so the span
  /// covers exactly n inter-tick gaps and divides by n, not n-1.
  double time_per_output_token() const {
    if (generated.empty()) return 0.0;
    return (completion_seconds - first_token_seconds) /
           static_cast<double>(generated.size());
  }
  /// True when this outcome attains `slo`: it finished normally (kLength
  /// or kStop), produced output, and both TTFT and mean TPOT land at or
  /// under the (positive) targets. Shed and cancelled requests never
  /// attain.
  bool attains(const TierSlo& slo) const {
    if (finish_reason != FinishReason::kLength &&
        finish_reason != FinishReason::kStop) {
      return false;
    }
    if (generated.empty()) return false;
    if (slo.ttft_target_seconds > 0.0 &&
        time_to_first_token() > slo.ttft_target_seconds) {
      return false;
    }
    if (slo.tpot_target_seconds > 0.0 &&
        time_per_output_token() > slo.tpot_target_seconds) {
      return false;
    }
    return true;
  }
};

/// One scheduler step (recorded when SchedulerConfig::record_ticks is on;
/// the `*_seqs` vectors hold indices into the original request vector).
struct TickRecord {
  /// Tick start on the simulated clock, seconds.
  double start_seconds = 0.0;
  /// Tick end on the simulated clock, seconds.
  double end_seconds = 0.0;
  /// Request indices that decoded one token this tick.
  std::vector<std::size_t> decode_seqs;
  /// Request indices that ran a prefill chunk this tick.
  std::vector<std::size_t> prefill_seqs;
  /// Prompt tokens processed across the tick's prefill chunks.
  std::int32_t prefill_tokens = 0;

  /// Sequences the tick's grouped forward pass covered.
  std::int32_t batch_width() const {
    return static_cast<std::int32_t>(decode_seqs.size() +
                                     prefill_seqs.size());
  }
};

/// Per-tier slice of the goodput/SLO accounting (ServingReport::tiers).
/// All token rates are over the report's makespan, so per-tier goodput
/// values are directly comparable to the headline tokens/s.
struct TierReport {
  /// Requests that finished normally (kLength or kStop) at this tier.
  std::int64_t finished_requests = 0;
  /// Requests rejected by admission control at this tier.
  std::int64_t shed_requests = 0;
  /// Finished requests that attained the tier's SLO.
  std::int64_t slo_attained_requests = 0;
  /// Generated tokens of SLO-attaining requests.
  std::int64_t goodput_tokens = 0;
  /// Generated tokens of all finished requests at this tier.
  std::int64_t generated_tokens = 0;
  /// `goodput_tokens` over the report makespan, tokens/s.
  double goodput_tokens_per_second = 0.0;

  /// Fraction of finished requests that attained the SLO (1 when the
  /// tier finished nothing -- an empty tier is vacuously attaining).
  double slo_attainment() const {
    return finished_requests > 0
               ? static_cast<double>(slo_attained_requests) /
                     static_cast<double>(finished_requests)
               : 1.0;
  }
};

/// Aggregate result of one serving run (single card or merged cluster).
struct ServingReport {
  /// Per-request terminal accounting, in submission order.
  std::vector<RequestOutcome> outcomes;
  /// First arrival to last completion, seconds.
  double makespan_seconds = 0.0;
  /// Unique prompt + generated tokens processed.
  std::int64_t total_tokens = 0;
  /// `total_tokens` over the makespan.
  double device_tokens_per_second = 0.0;

  // Continuous-batching aggregates (zero on the legacy round-robin path).
  /// Scheduler ticks executed.
  std::int64_t ticks = 0;
  /// Mean sequences per tick's grouped forward pass.
  double mean_batch_width = 0.0;
  /// Sequences swapped out of the KV pool.
  std::int64_t preemptions = 0;
  /// Swap-in recompute work, tokens.
  std::int64_t recomputed_tokens = 0;
  /// Requests that finished early on a stop token / EOS.
  std::int64_t stopped_requests = 0;
  /// Requests aborted mid-flight.
  std::int64_t cancelled_requests = 0;
  /// Requests rejected by admission control (FinishReason::kShed).
  std::int64_t shed_requests = 0;
  /// Budgeted decode tokens never generated because a stop token/EOS
  /// ended the request first (device work the early exit saved).
  std::int64_t stop_saved_tokens = 0;
  /// High-water KV pool occupancy, blocks.
  std::int64_t peak_kv_blocks = 0;
  /// Total KV blocks the pool was carved into.
  std::int64_t kv_block_capacity = 0;
  /// Bytes per block.
  std::uint64_t kv_block_bytes = 0;
  /// Pool budget, bytes.
  std::uint64_t kv_capacity_bytes = 0;

  // Prefix-cache aggregates (KvBlockPool; zero when caching is off).
  /// Admissions that probed the cache.
  std::int64_t prefix_cache_queries = 0;
  /// Admissions matching >= 1 block.
  std::int64_t prefix_cache_hits = 0;
  /// Prefill tokens served from cached blocks instead of device compute
  /// (includes recompute a swapped-in sequence skipped).
  std::int64_t prefix_cache_hit_tokens = 0;
  /// Tokens offered to the cache at lookup.
  std::int64_t prefix_cache_lookup_tokens = 0;
  /// Copy-on-write block copies.
  std::int64_t cow_copies = 0;
  /// Cold cached blocks reclaimed.
  std::int64_t cache_evictions = 0;

  // Simulated DMA traffic (PR 5): KV bytes actually moved by
  // copy-on-write copies, prefix-cache restores, and preemption
  // swap-outs. `dma_time_seconds` is the simulated time those moves
  // cost against the HBM bandwidth -- zero when
  // SchedulerConfig::charge_dma_cost is off (bytes accumulate either
  // way), so the prefix-cache speedup claims stay honest about what a
  // restore actually costs.
  /// KV bytes moved by COW copies, cache restores, and swap-outs.
  std::int64_t dma_bytes_moved = 0;
  /// Simulated time the moves cost (0 when charge_dma_cost is off).
  double dma_time_seconds = 0.0;

  // Speculative decoding aggregates (SchedulerConfig::speculative; all
  // zero with speculation off). Tokens committed by verify are counted
  // in total_tokens like any decode token -- these slice out how the
  // draft/verify pipeline spent its rows.
  /// Draft tokens proposed (k per sequence per decode tick, clipped by
  /// the request budget and pool capacity).
  std::int64_t spec_draft_tokens = 0;
  /// Extra tokens committed per tick beyond the baseline one -- the
  /// latency speculation collapsed.
  std::int64_t spec_accepted_tokens = 0;
  /// Verify rows launched but not committed (rejected tails, post-stop
  /// rows): work the packed launch still priced.
  std::int64_t spec_wasted_tokens = 0;

  /// Per-tick batch composition (only when SchedulerConfig::record_ticks).
  std::vector<TickRecord> tick_log;

  // SLO / goodput accounting (PR 7). Derived from the obs lifecycle
  // event stream when telemetry tracing is on (ClusterSession::Harvest
  // calls obs::ComputeGoodput over the trace -- not a parallel
  // bookkeeping path); all-zero when tracing is off. A reconciliation
  // test (tests/test_slo.cpp) locks the trace-derived numbers against an
  // independent recomputation from `outcomes`.
  /// Per-tier goodput/shed/SLO-attainment slices, indexed by TierIndex.
  std::array<TierReport, kNumTiers> tiers{};
  /// Generated tokens of SLO-attaining requests across tiers, over the
  /// makespan: the headline goodput next to device_tokens_per_second.
  double goodput_tokens_per_second = 0.0;

  /// Mean time-to-first-token over all outcomes, seconds.
  double mean_ttft() const;
  /// Mean end-to-end latency over all outcomes, seconds.
  double mean_latency() const;
  /// Interpolated TTFT percentile; `p` is a fraction in [0, 1].
  double ttft_percentile(double p) const;
  /// Interpolated end-to-end latency percentile; `p` in [0, 1].
  double latency_percentile(double p) const;
  /// Time-per-output-token percentile over multi-token generations.
  double tpot_percentile(double p) const;
  /// Interpolated TTFT percentile over one tier's finished outcomes
  /// (shed/cancelled excluded); 0 when the tier finished nothing.
  double tier_ttft_percentile(RequestTier tier, double p) const;
  /// Real interpolated p99 end-to-end latency (historically "p99ish",
  /// which was a max; the name survives for source compatibility).
  double p99ish_latency() const { return latency_percentile(0.99); }
  /// Fraction of cache-eligible prefill tokens served from cached
  /// blocks. 0 when caching is off or nothing was eligible.
  double cache_hit_rate() const {
    return prefix_cache_lookup_tokens > 0
               ? static_cast<double>(prefix_cache_hit_tokens) /
                     static_cast<double>(prefix_cache_lookup_tokens)
               : 0.0;
  }
};

// ----- online emission hooks (shard -> cluster session -> api::Engine) -----
//
// Tokens are delivered at the simulated end of the tick that committed
// them; the finish hook fires once per request with the final outcome
// (still owned by the shard until its report is harvested).

/// Fires once per generated token at the simulated end of the tick that
/// committed it.
using TokenEmissionHook = std::function<void(
    std::size_t stream_index, std::int32_t token, double time_seconds)>;
/// Fires exactly once per request with the final outcome (still owned by
/// the shard until its report is harvested).
using FinishEmissionHook = std::function<void(
    std::size_t stream_index, FinishReason reason,
    const RequestOutcome& outcome, double time_seconds)>;

}  // namespace speedllm::serving
